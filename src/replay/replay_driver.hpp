// ReplayDriver: maps a recorded ReplayLog onto the deterministic simulator
// and re-executes the run input-for-input.
//
// The driver builds a SimDebugHarness whose shims run in replay-gate mode
// (DebugShim::Options::replay_gate): every application delivery is held in
// a per-process FIFO gate, and timers never reach the substrate.  It then
// walks the log's records in order —
//
//   Deliver    advance virtual time until the message sits in the gate,
//              then release it to the user handler, checking ordinal and
//              payload hash against the record;
//   TimerFire  fire the timer created as the recorded ordinal;
//   TimerSet   already consumed: the full timer-id script is preloaded
//              into each shim before on_start, so replayed set_timer calls
//              hand back the recorded substrate ids verbatim;
//   HaltCut    drive a halt wave through the real DebuggerSession, wait
//              for the assembled S_h and verify it is equivalent() to the
//              recorded cut (Theorem-2 check: state bytes and channel
//              contents, not clocks or paths);
//   Annotation transport provenance (fault draws, reconnects) — counted,
//              never acted on: the reliability layer already made user-level
//              delivery exactly-once FIFO, so replay is the fault-free
//              equivalent run.
//
// Because release order is the logged order and the gate drains into the
// halting engine at halt entry, the replayed wave's channel state is
// exactly the messages the original cut had in flight.  Two replays of the
// same log are byte-identical: Report::describe(), the final user states
// and the metrics JSON can all be diffed byte-for-byte.
//
// Reverse-continue ("back"): Options::stop_after_cut = k replays the
// prefix of the log up to the k-th halt cut and leaves the system halted
// there — time travel to an earlier consistent cut by deterministic
// re-execution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "debugger/harness.hpp"
#include "replay/replay_log.hpp"

namespace ddbg {

class ReplayDriver {
 public:
  struct Options {
    // Virtual-time budget for each record to become actionable (message
    // reaching the gate, posted closure running).  Generous by default:
    // exceeding it means the replay diverged (the expected input never
    // materialized), not that the run is slow.
    Duration step_timeout = Duration::seconds(10);
    // Budget for a replayed halt wave to assemble and for resume.
    Duration halt_timeout = Duration::seconds(10);
    // 0 = replay the whole log.  k >= 1 = stop at the k-th HaltCut record
    // and leave the system halted there (reverse-continue target).
    std::uint64_t stop_after_cut = 0;
    // Extra shim options (trace sinks, breakpoint hooks) merged into the
    // gate-mode configuration.  replay_gate is forced on, replay_record
    // forced off.
    DebugShim::Options shim_options;
  };

  struct Report {
    // Records consumed, by kind.
    std::uint64_t deliveries = 0;
    std::uint64_t timer_sets = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t cuts = 0;
    std::uint64_t annotations = 0;
    // HaltCut records whose replayed S_h was equivalent() to the recorded
    // one; first_difference() strings for the rest.
    std::uint64_t cuts_matched = 0;
    std::vector<std::string> cut_diffs;
    // Ordinal/hash mismatches and missing timers (replay kept going).
    std::uint64_t divergences = 0;
    // Replay stopped at Options::stop_after_cut and the system is halted
    // there (inspect via harness().session()).
    bool halted_at_cut = false;
    // Empty = every requested record was consumed.  Non-empty = the replay
    // could not proceed (expected input never arrived, wave never
    // completed); describes the first fatal problem.
    std::string error;
    // Final describe_state() of every user process, in id order.
    std::vector<std::string> final_states;
    // The replay simulation's metrics snapshot (deterministic: virtual
    // time only).
    std::string metrics_json;

    [[nodiscard]] bool ok() const { return error.empty(); }
    // Deterministic multi-line summary — byte-identical across replays of
    // the same log; CI diffs it.
    [[nodiscard]] std::string describe() const;
  };

  // `users` must match the log header: header.num_user_processes processes
  // whose behavior is the recorded workload's (same code, same start
  // states).  `user_topology` is the user-level topology the run was
  // recorded on; the driver re-extends it with the recorded debugger
  // fanout.
  ReplayDriver(ReplayLog log, const Topology& user_topology,
               std::vector<ProcessPtr> users);
  ReplayDriver(ReplayLog log, const Topology& user_topology,
               std::vector<ProcessPtr> users, Options options);

  // Re-execute (the prefix of) the log.  Call once.
  Report run();

  // The underlying harness — live after run() returned with
  // halted_at_cut, for inspecting the time-traveled state.
  [[nodiscard]] SimDebugHarness& harness() { return *harness_; }
  [[nodiscard]] const ReplayLog& log() const { return log_; }

 private:
  // Pump virtual time until `condition` holds; false = timed out.
  bool pump(const std::function<bool()>& condition);
  bool replay_deliver(const ReplayRecord& record, Report& report);
  bool replay_timer_fire(const ReplayRecord& record, Report& report);
  bool replay_halt_cut(const ReplayRecord& record, Report& report,
                       std::uint64_t cut_index);

  ReplayLog log_;
  Options options_;
  std::uint32_t num_users_ = 0;
  std::unique_ptr<SimDebugHarness> harness_;
  bool ran_ = false;
};

}  // namespace ddbg
