#include "replay/replay_log.hpp"

#include <fstream>
#include <unordered_map>

#include "net/framing.hpp"
#include "net/replay_hooks.hpp"

namespace ddbg {

void ReplayLogHeader::encode(ByteWriter& writer) const {
  writer.u32(kReplayLogMagic);
  writer.u16(kReplayLogVersion);
  writer.u64(seed);
  writer.str(substrate);
  writer.str(workload);
  writer.varint(num_user_processes);
  writer.varint(debugger_fanout);
  writer.varint(num_channels);
  writer.str(fault_spec);
}

Result<ReplayLogHeader> ReplayLogHeader::decode(ByteReader& reader) {
  auto magic = reader.u32();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kReplayLogMagic) {
    return Error(ErrorCode::kParseError, "not a replay log (bad magic)");
  }
  auto version = reader.u16();
  if (!version.ok()) return version.error();
  if (version.value() != kReplayLogVersion) {
    return Error(ErrorCode::kParseError,
                 "unsupported replay log version " +
                     std::to_string(version.value()));
  }
  ReplayLogHeader header;
  auto seed = reader.u64();
  if (!seed.ok()) return seed.error();
  header.seed = seed.value();
  auto substrate = reader.str();
  if (!substrate.ok()) return substrate.error();
  header.substrate = std::move(substrate).value();
  auto workload = reader.str();
  if (!workload.ok()) return workload.error();
  header.workload = std::move(workload).value();
  auto n = reader.varint();
  if (!n.ok()) return n.error();
  if (n.value() == 0 || n.value() > 1'000'000) {
    return Error(ErrorCode::kParseError,
                 "replay log process count out of range");
  }
  header.num_user_processes = static_cast<std::uint32_t>(n.value());
  auto fanout = reader.varint();
  if (!fanout.ok()) return fanout.error();
  if (fanout.value() > 1'000'000) {
    return Error(ErrorCode::kParseError, "replay log fanout out of range");
  }
  header.debugger_fanout = static_cast<std::uint32_t>(fanout.value());
  auto channels = reader.varint();
  if (!channels.ok()) return channels.error();
  if (channels.value() > 100'000'000) {
    return Error(ErrorCode::kParseError,
                 "replay log channel count out of range");
  }
  header.num_channels = static_cast<std::uint32_t>(channels.value());
  auto faults = reader.str();
  if (!faults.ok()) return faults.error();
  header.fault_spec = std::move(faults).value();
  return header;
}

std::string ReplayLogHeader::describe() const {
  std::string out = "recorded on " + substrate + ", seed " +
                    std::to_string(seed) + ", workload " +
                    (workload.empty() ? std::string("<custom>") : workload) +
                    " n=" + std::to_string(num_user_processes);
  if (debugger_fanout != 0) {
    out += " fanout=" + std::to_string(debugger_fanout);
  }
  if (!fault_spec.empty()) out += " faults=" + fault_spec;
  return out;
}

void ReplayRecord::encode(ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case ReplayRecordKind::kDeliver:
      writer.varint(process);
      writer.varint(channel);
      writer.varint(ordinal);
      writer.u64(hash);
      writer.varint(detail);
      return;
    case ReplayRecordKind::kTimerSet:
      writer.varint(process);
      writer.varint(ordinal);
      writer.u32(timer);
      return;
    case ReplayRecordKind::kTimerFire:
      writer.varint(process);
      writer.varint(ordinal);
      return;
    case ReplayRecordKind::kHaltCut:
      writer.varint(wave);
      writer.bytes(state);
      return;
    case ReplayRecordKind::kAnnotation:
      writer.u8(annotation);
      writer.varint(channel);
      writer.varint(detail);
      return;
  }
}

namespace {

// Decode one record frame, validating ids against the header and the
// running per-channel / per-process state (sequential delivery ordinals,
// timer fires referencing created timers).
Result<ReplayRecord> decode_record(
    std::span<const std::uint8_t> body, const ReplayLogHeader& header,
    std::unordered_map<std::uint32_t, std::uint64_t>& channel_seen,
    std::unordered_map<std::uint32_t, std::uint64_t>& timers_created) {
  ByteReader reader(body);
  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > kMaxReplayRecordKind) {
    return Error(ErrorCode::kParseError,
                 "unknown replay record kind " + std::to_string(kind.value()));
  }
  ReplayRecord record;
  record.kind = static_cast<ReplayRecordKind>(kind.value());

  const auto read_process = [&]() -> Result<std::uint32_t> {
    auto p = reader.varint();
    if (!p.ok()) return p.error();
    if (p.value() >= header.num_user_processes) {
      return Error(ErrorCode::kParseError,
                   "replay record names process " + std::to_string(p.value()) +
                       " outside the recorded topology");
    }
    return static_cast<std::uint32_t>(p.value());
  };
  const auto read_channel = [&]() -> Result<std::uint32_t> {
    auto c = reader.varint();
    if (!c.ok()) return c.error();
    if (c.value() >= header.num_channels) {
      return Error(ErrorCode::kParseError,
                   "replay record names channel " + std::to_string(c.value()) +
                       " outside the recorded topology");
    }
    return static_cast<std::uint32_t>(c.value());
  };

  switch (record.kind) {
    case ReplayRecordKind::kDeliver: {
      auto p = read_process();
      if (!p.ok()) return p.error();
      record.process = p.value();
      auto c = read_channel();
      if (!c.ok()) return c.error();
      record.channel = c.value();
      auto ordinal = reader.varint();
      if (!ordinal.ok()) return ordinal.error();
      record.ordinal = ordinal.value();
      // Per-channel delivery ordinals are sequential by construction (one
      // receiver per channel, recorded in its delivery order); anything
      // else is corruption.
      std::uint64_t& seen = channel_seen[record.channel];
      if (record.ordinal != seen) {
        return Error(ErrorCode::kParseError,
                     "delivery ordinal " + std::to_string(record.ordinal) +
                         " out of sequence on channel " +
                         std::to_string(record.channel) + " (expected " +
                         std::to_string(seen) + ")");
      }
      ++seen;
      auto hash = reader.u64();
      if (!hash.ok()) return hash.error();
      record.hash = hash.value();
      auto size = reader.varint();
      if (!size.ok()) return size.error();
      record.detail = size.value();
      break;
    }
    case ReplayRecordKind::kTimerSet: {
      auto p = read_process();
      if (!p.ok()) return p.error();
      record.process = p.value();
      auto ordinal = reader.varint();
      if (!ordinal.ok()) return ordinal.error();
      record.ordinal = ordinal.value();
      std::uint64_t& created = timers_created[record.process];
      if (record.ordinal != created) {
        return Error(ErrorCode::kParseError,
                     "timer creation ordinal " +
                         std::to_string(record.ordinal) +
                         " out of sequence for process " +
                         std::to_string(record.process));
      }
      ++created;
      auto timer = reader.u32();
      if (!timer.ok()) return timer.error();
      record.timer = timer.value();
      break;
    }
    case ReplayRecordKind::kTimerFire: {
      auto p = read_process();
      if (!p.ok()) return p.error();
      record.process = p.value();
      auto ordinal = reader.varint();
      if (!ordinal.ok()) return ordinal.error();
      record.ordinal = ordinal.value();
      if (record.ordinal >= timers_created[record.process]) {
        return Error(ErrorCode::kParseError,
                     "timer fire references uncreated ordinal " +
                         std::to_string(record.ordinal) + " on process " +
                         std::to_string(record.process));
      }
      break;
    }
    case ReplayRecordKind::kHaltCut: {
      auto wave = reader.varint();
      if (!wave.ok()) return wave.error();
      record.wave = wave.value();
      auto state = reader.bytes();
      if (!state.ok()) return state.error();
      record.state = std::move(state).value();
      break;
    }
    case ReplayRecordKind::kAnnotation: {
      auto akind = reader.u8();
      if (!akind.ok()) return akind.error();
      if (akind.value() >= kNumReplayAnnotationKinds) {
        return Error(ErrorCode::kParseError,
                     "unknown replay annotation kind " +
                         std::to_string(akind.value()));
      }
      record.annotation = akind.value();
      auto c = read_channel();
      if (!c.ok()) return c.error();
      record.channel = c.value();
      auto detail = reader.varint();
      if (!detail.ok()) return detail.error();
      record.detail = detail.value();
      break;
    }
  }
  if (reader.remaining() != 0) {
    return Error(ErrorCode::kParseError,
                 "trailing bytes after replay record");
  }
  return record;
}

std::size_t count_kind(const std::vector<ReplayRecord>& records,
                       ReplayRecordKind kind) {
  std::size_t n = 0;
  for (const ReplayRecord& record : records) {
    if (record.kind == kind) ++n;
  }
  return n;
}

}  // namespace

std::size_t ReplayLog::deliveries() const {
  return count_kind(records, ReplayRecordKind::kDeliver);
}
std::size_t ReplayLog::timer_sets() const {
  return count_kind(records, ReplayRecordKind::kTimerSet);
}
std::size_t ReplayLog::timer_fires() const {
  return count_kind(records, ReplayRecordKind::kTimerFire);
}
std::size_t ReplayLog::halt_cuts() const {
  return count_kind(records, ReplayRecordKind::kHaltCut);
}
std::size_t ReplayLog::annotations() const {
  return count_kind(records, ReplayRecordKind::kAnnotation);
}

std::string ReplayLog::describe() const {
  return header.describe() + ": " + std::to_string(records.size()) +
         " records (" + std::to_string(deliveries()) + " deliveries, " +
         std::to_string(timer_sets()) + " timers set, " +
         std::to_string(timer_fires()) + " fired, " +
         std::to_string(halt_cuts()) + " halt cuts, " +
         std::to_string(annotations()) + " annotations)";
}

Bytes ReplayLog::encode() const {
  Bytes out;
  {
    const std::size_t at = begin_frame(out);
    ByteWriter writer(out);
    header.encode(writer);
    end_frame(out, at);
  }
  for (const ReplayRecord& record : records) {
    const std::size_t at = begin_frame(out);
    ByteWriter writer(out);
    record.encode(writer);
    end_frame(out, at);
  }
  return out;
}

Result<ReplayLog> ReplayLog::decode(std::span<const std::uint8_t> data) {
  FrameParser parser;
  parser.append(data);
  const auto header_body = parser.next();
  if (!header_body.has_value()) {
    return Error(ErrorCode::kParseError,
                 parser.corrupt() ? "replay log header frame corrupt"
                                  : "replay log truncated before header");
  }
  ReplayLog log;
  {
    ByteReader reader(*header_body);
    auto header = ReplayLogHeader::decode(reader);
    if (!header.ok()) return header.error();
    if (reader.remaining() != 0) {
      return Error(ErrorCode::kParseError,
                   "trailing bytes after replay log header");
    }
    log.header = std::move(header).value();
  }
  std::unordered_map<std::uint32_t, std::uint64_t> channel_seen;
  std::unordered_map<std::uint32_t, std::uint64_t> timers_created;
  while (true) {
    const auto body = parser.next();
    if (!body.has_value()) {
      if (parser.corrupt()) {
        return Error(ErrorCode::kParseError, "replay log frame corrupt");
      }
      if (parser.buffered_bytes() != 0) {
        return Error(ErrorCode::kParseError,
                     "replay log truncated mid-record");
      }
      break;
    }
    auto record =
        decode_record(*body, log.header, channel_seen, timers_created);
    if (!record.ok()) return record.error();
    log.records.push_back(std::move(record).value());
  }
  return log;
}

Status ReplayLog::save(const std::string& path) const {
  const Bytes encoded = encode();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error(ErrorCode::kInternal, "cannot open " + path + " for write");
  }
  out.write(reinterpret_cast<const char*>(encoded.data()),
            static_cast<std::streamsize>(encoded.size()));
  out.flush();
  if (!out) {
    return Error(ErrorCode::kInternal, "short write to " + path);
  }
  return Status::ok_status();
}

Result<ReplayLog> ReplayLog::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open replay log " + path);
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return decode(data);
}

}  // namespace ddbg
