#include "replay/recorder.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace ddbg {

ReplayRecorder::ReplayRecorder(ReplayLogHeader header,
                               obs::MetricsRegistry* metrics)
    : header_(std::move(header)), metrics_(metrics) {}

void ReplayRecorder::record_delivery(ProcessId p, ChannelId in,
                                     std::uint64_t ordinal,
                                     std::uint64_t payload_hash,
                                     std::uint64_t payload_bytes) {
  ReplayRecord record;
  record.kind = ReplayRecordKind::kDeliver;
  record.process = p.value();
  record.channel = in.value();
  record.ordinal = ordinal;
  record.hash = payload_hash;
  record.detail = payload_bytes;
  append(std::move(record));
  if (metrics_ != nullptr) metrics_->on_replay_delivery_logged();
}

void ReplayRecorder::record_timer_set(ProcessId p, std::uint64_t ordinal,
                                      TimerId timer) {
  ReplayRecord record;
  record.kind = ReplayRecordKind::kTimerSet;
  record.process = p.value();
  record.ordinal = ordinal;
  record.timer = timer.value();
  append(std::move(record));
  if (metrics_ != nullptr) metrics_->on_replay_timer_set_logged();
}

void ReplayRecorder::record_timer_fire(ProcessId p, std::uint64_t ordinal) {
  ReplayRecord record;
  record.kind = ReplayRecordKind::kTimerFire;
  record.process = p.value();
  record.ordinal = ordinal;
  append(std::move(record));
  if (metrics_ != nullptr) metrics_->on_replay_timer_fire_logged();
}

void ReplayRecorder::record_halt_cut(std::uint64_t wave, Bytes encoded_state) {
  ReplayRecord record;
  record.kind = ReplayRecordKind::kHaltCut;
  record.wave = wave;
  record.state = std::move(encoded_state);
  append(std::move(record));
  if (metrics_ != nullptr) metrics_->on_replay_cut_logged();
}

void ReplayRecorder::record_annotation(std::uint8_t kind, ChannelId channel,
                                       std::uint64_t detail) {
  ReplayRecord record;
  record.kind = ReplayRecordKind::kAnnotation;
  record.channel = channel.value();
  record.annotation = kind;
  record.detail = detail;
  append(std::move(record));
  if (metrics_ != nullptr) metrics_->on_replay_annotation_logged();
}

std::size_t ReplayRecorder::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

ReplayLog ReplayRecorder::log() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ReplayLog log;
  log.header = header_;
  log.records = records_;
  return log;
}

Status ReplayRecorder::save(const std::string& path) const {
  ReplayLog snapshot = log();
  if (metrics_ != nullptr) {
    metrics_->on_replay_log_bytes(snapshot.encode().size());
  }
  return snapshot.save(path);
}

void ReplayRecorder::append(ReplayRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

}  // namespace ddbg
