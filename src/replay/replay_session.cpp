#include "replay/replay_session.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "workload/behaviors.hpp"
#include "workload/resources.hpp"

namespace ddbg {

namespace {

std::string trimmed(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

// Split "verb rest" on the first whitespace run.
std::pair<std::string, std::string> split_verb(const std::string& text) {
  const std::size_t space = text.find_first_of(" \t");
  if (space == std::string::npos) return {text, ""};
  return {text.substr(0, space), trimmed(text.substr(space + 1))};
}

Error usage_error() {
  return Error(ErrorCode::kInvalidArgument,
               "usage: replay load <path> | run | back | cut <k> | status");
}

}  // namespace

Result<BuiltWorkload> make_named_workload(const std::string& workload,
                                          std::uint32_t n) {
  if (n < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "workload needs at least 2 processes");
  }
  BuiltWorkload built;
  // These configs are the record-side configs (ddbg_target) verbatim: a
  // replayed process must run the exact code path the log recorded.
  if (workload == "ring") {
    built.topology = Topology::ring(n);
    TokenRingConfig config;
    config.rounds = 1'000'000;  // effectively: until shutdown
    config.hop_delay = Duration::millis(1);
    built.processes = make_token_ring(n, config);
  } else if (workload == "gossip") {
    built.topology = Topology::ring(n);
    GossipConfig config;
    config.send_interval = Duration::millis(1);
    built.processes = make_gossip(n, config);
  } else if (workload == "resources") {
    built.topology = resource_ring_topology(n);
    ResourceRingConfig config;
    config.acquire_delay = Duration::millis(50);
    built.processes = make_resource_ring(n, config);
  } else {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown workload '" + workload +
                     "' (expected ring|gossip|resources)");
  }
  return built;
}

Result<std::string> ReplayCommandHandler::handle(const std::string& command) {
  const auto [verb, rest] = split_verb(trimmed(command));
  if (verb == "load") {
    if (rest.empty()) return usage_error();
    return load(rest);
  }
  if (verb == "status") return status();
  if (verb != "run" && verb != "back" && verb != "cut") return usage_error();
  if (!log_.has_value()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "no log loaded; run `replay load <path>` first");
  }
  if (verb == "run") {
    cursor_ = 0;  // a full run resets the time-travel cursor
    return run_to(0);
  }
  if (verb == "cut") {
    char* end = nullptr;
    const unsigned long long k = std::strtoull(rest.c_str(), &end, 10);
    if (rest.empty() || end == nullptr || *end != '\0' || k == 0 ||
        k > num_cuts_) {
      return Error(ErrorCode::kInvalidArgument,
                   "cut wants 1.." + std::to_string(num_cuts_) +
                       " (log has " + std::to_string(num_cuts_) +
                       " recorded cuts)");
    }
    return run_to(k);
  }
  // back: one consistent cut earlier than where we stand.
  const std::uint64_t target = cursor_ == 0 ? num_cuts_ : cursor_ - 1;
  if (target == 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 cursor_ == 0 ? "log has no recorded halt cut to go back to"
                              : "already at the first recorded cut");
  }
  return run_to(target);
}

std::function<Result<std::string>(const std::string&)>
ReplayCommandHandler::bound() {
  return [this](const std::string& command) {
    std::lock_guard<std::mutex> guard{mutex_};
    return handle(command);
  };
}

Result<std::string> ReplayCommandHandler::load(const std::string& path) {
  auto log = ReplayLog::load(path);
  if (!log.ok()) return log.error();
  log_ = std::move(log).value();
  path_ = path;
  num_cuts_ = log_->halt_cuts();
  cursor_ = 0;
  last_report_.clear();
  return "loaded " + path + "\n" + log_->describe();
}

Result<ReplayDriver::Report> ReplayCommandHandler::replay(
    std::uint64_t stop_after_cut) {
  auto built = make_named_workload(log_->header.workload,
                                   log_->header.num_user_processes);
  if (!built.ok()) return built.error();
  ReplayDriver::Options options;
  options.stop_after_cut = stop_after_cut;
  ReplayDriver driver(*log_, built.value().topology,
                      std::move(built.value().processes), std::move(options));
  return driver.run();
}

Result<std::string> ReplayCommandHandler::run_to(
    std::uint64_t stop_after_cut) {
  auto report = replay(stop_after_cut);
  if (!report.ok()) return report.error();
  std::ostringstream out;
  if (stop_after_cut == 0) {
    out << "replayed " << path_ << " (" << log_->header.describe() << ")\n";
  } else {
    cursor_ = stop_after_cut;
    out << "time-traveled to cut " << stop_after_cut << "/" << num_cuts_
        << " of " << path_ << "\n";
  }
  out << report.value().describe();
  last_report_ = out.str();
  return last_report_;
}

Result<std::string> ReplayCommandHandler::status() const {
  if (!log_.has_value()) return std::string("no log loaded");
  std::ostringstream out;
  out << "loaded: " << path_ << "\n" << log_->describe() << "\n";
  if (cursor_ != 0) {
    out << "cursor: halted at cut " << cursor_ << "/" << num_cuts_ << "\n";
  } else {
    out << "cursor: end of run\n";
  }
  if (!last_report_.empty()) out << last_report_;
  return out.str();
}

}  // namespace ddbg
