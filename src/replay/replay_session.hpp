// ReplayCommandHandler: the `replay` verb of the debugger session
// protocol, bound into a SessionServer via set_replay_handler().
//
//   replay load <path>   parse + validate a replay log, print its summary
//   replay run           re-execute the whole log in the simulator
//   replay back          reverse-continue: re-execute to the halt cut
//                        before the current cursor and stop there, halted
//   replay cut <k>       time-travel directly to the k-th recorded cut
//   replay status        loaded log, cursor, last report
//
// "Backwards execution" is deterministic re-execution of a prefix
// (DESIGN.md): each `back`/`cut` builds a fresh ReplayDriver from the
// loaded log, replays from the beginning up to the target HaltCut record,
// and reports the frozen consistent cut — the recorded S_h it must be
// equivalent() to is re-verified on every trip.
//
// The handler builds user processes with the same named-workload factory
// ddbg_target records with (make_named_workload), so a log recorded by
// `ddbg_target --record` replays with byte-identical process behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "net/process.hpp"
#include "net/topology.hpp"
#include "replay/replay_driver.hpp"
#include "replay/replay_log.hpp"

namespace ddbg {

// The workload zoo shared by ddbg_target (record side) and the replay
// handler (re-execute side): one place for the per-workload configs, so
// the recorded and replayed process behaviors cannot drift.
struct BuiltWorkload {
  Topology topology{0};
  std::vector<ProcessPtr> processes;
};
[[nodiscard]] Result<BuiltWorkload> make_named_workload(
    const std::string& workload, std::uint32_t n);

class ReplayCommandHandler {
 public:
  // Handle one `replay ...` command; the returned text goes to the client
  // verbatim.  Serialized by the caller or externally — the handler keeps
  // cursor state across calls and is not itself thread-safe.
  [[nodiscard]] Result<std::string> handle(const std::string& command);

  // Bindable form for SessionServer::set_replay_handler.  The server may
  // invoke it from several session-service threads; a mutex in the bound
  // callable serializes them (replays are rare and seconds-long anyway).
  [[nodiscard]] std::function<Result<std::string>(const std::string&)>
  bound();

 private:
  [[nodiscard]] Result<std::string> load(const std::string& path);
  [[nodiscard]] Result<std::string> run_to(std::uint64_t stop_after_cut);
  [[nodiscard]] Result<std::string> status() const;
  [[nodiscard]] Result<ReplayDriver::Report> replay(
      std::uint64_t stop_after_cut);

  std::mutex mutex_;  // serializes bound() calls across session threads
  std::optional<ReplayLog> log_;
  std::string path_;
  std::uint64_t num_cuts_ = 0;
  // Reverse-continue cursor: the cut the last `back`/`cut` stopped at;
  // 0 = not time-traveled (cursor conceptually at end of run).
  std::uint64_t cursor_ = 0;
  std::string last_report_;
};

}  // namespace ddbg
