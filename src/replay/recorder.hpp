// ReplayRecorder: the concrete ReplaySink that builds a ReplayLog.
//
// One recorder serves a whole run: every DebugShim, the debugger process
// and the transport layer append through it.  On the threaded and TCP
// substrates those calls arrive concurrently from many process/reactor
// threads, so appends are serialized by a mutex — the resulting global
// order is exactly the order the mutex granted, which respects causality
// (a message is sent, under some earlier record's handler, before its own
// delivery record can be appended).  Recording is off-hot-path by design:
// one small struct append per user-boundary event, no encoding until
// finish().
#pragma once

#include <mutex>

#include "net/replay_hooks.hpp"
#include "replay/replay_log.hpp"

namespace ddbg::obs {
class MetricsRegistry;
}  // namespace ddbg::obs

namespace ddbg {

class ReplayRecorder final : public ReplaySink {
 public:
  // `header` describes the run being recorded (seed, substrate, workload,
  // topology bounds).  `metrics` may be null; when set, the recorder keeps
  // the `replay` metrics block of the recorded run's registry current.
  explicit ReplayRecorder(ReplayLogHeader header,
                          obs::MetricsRegistry* metrics = nullptr);

  // The recorded run's registry is usually constructed after the recorder
  // (it lives inside the substrate); attach it before the run starts.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // ---- ReplaySink ----
  void record_delivery(ProcessId p, ChannelId in, std::uint64_t ordinal,
                       std::uint64_t payload_hash,
                       std::uint64_t payload_bytes) override;
  void record_timer_set(ProcessId p, std::uint64_t ordinal,
                        TimerId timer) override;
  void record_timer_fire(ProcessId p, std::uint64_t ordinal) override;
  void record_halt_cut(std::uint64_t wave, Bytes encoded_state) override;
  void record_annotation(std::uint8_t kind, ChannelId channel,
                         std::uint64_t detail) override;

  // ---- results ----
  [[nodiscard]] std::size_t records() const;
  // Snapshot of the log so far (copies; the recorder keeps recording).
  [[nodiscard]] ReplayLog log() const;
  // Encode and write the log; records the final log size in metrics.
  [[nodiscard]] Status save(const std::string& path) const;

 private:
  void append(ReplayRecord record);

  ReplayLogHeader header_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::vector<ReplayRecord> records_;
};

}  // namespace ddbg
