#include "debugger/restore.hpp"

namespace ddbg {

Status restore_into(SimDebugHarness& harness, const GlobalState& state) {
  if (harness.sim().events_processed() != 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "restore_into requires a harness that has not run yet");
  }
  const std::uint32_t users = harness.topology().num_user_processes();
  if (state.size() != users) {
    return Error(ErrorCode::kInvalidArgument,
                 "global state covers " + std::to_string(state.size()) +
                     " processes but the topology has " +
                     std::to_string(users));
  }
  for (const auto& [process, snapshot] : state.snapshots()) {
    if (process.value() >= users) {
      return Error(ErrorCode::kInvalidArgument,
                   "snapshot for unknown process " + to_string(process));
    }
    if (!harness.shim(process).restore_state(snapshot.state)) {
      return Error(ErrorCode::kInvalidArgument,
                   "process " + to_string(process) +
                       " does not support state restoration");
    }
  }
  // Re-materialize the in-flight messages.  Per-channel order is the
  // recorded order; the simulator delivers them before any new traffic.
  for (const auto& [process, snapshot] : state.snapshots()) {
    for (const ChannelState& channel : snapshot.in_channels) {
      if (channel.channel.value() >= harness.topology().num_channels()) {
        return Error(ErrorCode::kInvalidArgument,
                     "recorded channel does not exist in this topology");
      }
      for (const Bytes& payload : channel.messages) {
        harness.sim().preload_channel(channel.channel, payload);
      }
    }
  }
  return Status::ok_status();
}

}  // namespace ddbg
