// The debugger process `d` of the extended model (section 2.2.3, figure 3).
//
// d is an ordinary process of the computation as far as the marker rules
// are concerned — it receives and forwards halt/snapshot markers on its
// control channels, which is precisely what makes every topology strongly
// connected and lets a halting wave reach processes the application graph
// cannot (figure 2's producer, an infrequently-communicating process) — but
// it "never really halts": it only propagates, collects reports and serves
// the interactive session.
//
// Under Topology::with_debugger_tree() this process is the *root* of a
// debugger tier: markers and control commands fan out over its direct tier
// children (AggregatorProcess nodes) instead of n control channels, and
// subtree reports arrive pre-merged as kAggregated*Report convergecast
// messages.  With a flat with_debugger() topology the children are exactly
// the user processes, so behaviour is unchanged.
//
// All mutable state is guarded by a mutex so an interactive session thread
// (or a test) can read results while the debugger's own thread handles
// messages.  Mutating entry points that send messages must run in process
// context (posted closures or message handlers).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "core/commands.hpp"
#include "core/global_state.hpp"
#include "core/predicate.hpp"
#include "net/process.hpp"
#include "net/replay_hooks.hpp"

namespace ddbg {

class DebuggerProcess final : public Process {
 public:
  struct BreakpointHit {
    BreakpointId breakpoint;
    ProcessId process;
    std::string description;
    TimePoint when{};
  };

  struct WaveInfo {
    std::uint64_t id = 0;
    bool complete = false;
    TimePoint started_at{};
    TimePoint completed_at{};
    GlobalState state;
    // Section 2.2.4 halt-order information: for every process, the marker
    // path it halted on (empty for spontaneous initiators).
    std::map<ProcessId, std::vector<ProcessId>> halt_paths;
  };

  DebuggerProcess() = default;

  // Record every completed halt wave's assembled S_h into a replay log
  // (src/replay).  Called before the run starts; null disables recording.
  void set_replay_sink(ReplaySink* sink) { replay_sink_ = sink; }

  // ---- Process ----
  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  [[nodiscard]] std::string describe_state() const override {
    return "debugger";
  }

  // ---- commands (must run in process context, e.g. via post()) ----
  // Register a breakpoint and arm it on the involved processes.  Returns
  // the new breakpoint id.
  BreakpointId set_breakpoint(ProcessContext& ctx, const BreakpointSpec& spec);
  // Disarm everywhere.
  void clear_breakpoint(ProcessContext& ctx, BreakpointId bp);
  // Start a halting wave from the debugger (the interactive "stop now").
  std::uint64_t initiate_halt(ProcessContext& ctx);
  // Start a C&L recording wave from the debugger.
  std::uint64_t initiate_snapshot(ProcessContext& ctx);
  // Resume the current halting wave.
  void resume_all(ProcessContext& ctx);
  // Ask one process for a state report (answer arrives asynchronously; see
  // state_report()).
  void query_state(ProcessContext& ctx, ProcessId target);

  // ---- thread-safe observers ----
  [[nodiscard]] std::uint64_t last_halt_id() const;
  [[nodiscard]] bool halt_complete(std::uint64_t wave) const;
  [[nodiscard]] bool latest_halt_complete() const;
  [[nodiscard]] std::optional<WaveInfo> halt_wave(std::uint64_t wave) const;
  [[nodiscard]] std::optional<WaveInfo> latest_halt_wave() const;

  [[nodiscard]] std::uint64_t last_snapshot_id() const;
  [[nodiscard]] bool snapshot_complete(std::uint64_t wave) const;
  [[nodiscard]] std::optional<WaveInfo> snapshot_wave(
      std::uint64_t wave) const;

  [[nodiscard]] std::vector<BreakpointHit> hits() const;
  // Occurrences of one breakpoint (monitor-mode chains accumulate these).
  [[nodiscard]] std::size_t hit_count(BreakpointId bp) const;
  [[nodiscard]] std::optional<ProcessSnapshot> state_report(
      ProcessId process) const;

  // Number of halt markers this debugger forwarded (experiment accounting).
  [[nodiscard]] std::uint64_t markers_forwarded() const;

 private:
  void handle_halt_marker(ProcessContext& ctx, ChannelId in,
                          const HaltMarkerData& data);
  void handle_snapshot_marker(ProcessContext& ctx, ChannelId in,
                              const SnapshotMarkerData& data);
  void handle_command(ProcessContext& ctx, Command command);
  // Mark the wave complete once every user process has reported.  Caller
  // holds mutex_.
  void check_wave_complete(ProcessContext& ctx, WaveInfo& wave, bool halt);
  // Broadcast a wave marker over the tier children, skipping the aggregator
  // child it arrived from (flat mode: all children are users, none skipped).
  void forward_wave(ProcessContext& ctx, ProcessId origin,
                    const Message& marker);
  // The direct tier child whose subtree covers user process `target` (the
  // target itself in flat mode).
  [[nodiscard]] ProcessId route_child(ProcessId target) const;
  // Send the arm commands for a breakpoint (initial arming and monitor-mode
  // re-arming).
  void arm_spec(ProcessContext& ctx, BreakpointId bp,
                const BreakpointSpec& spec);
  void send_control(ProcessContext& ctx, ProcessId target,
                    const Command& command);
  void broadcast_control(ProcessContext& ctx, const Command& command);
  WaveInfo& wave_entry(std::map<std::uint64_t, WaveInfo>& waves,
                       std::uint64_t id, ProcessContext& ctx);

  const Topology* topology_ = nullptr;  // bound in on_start
  ProcessId self_;
  ReplaySink* replay_sink_ = nullptr;
  // Direct tier children (all user processes in flat mode, the top layer of
  // aggregators in tree mode).  Immutable after on_start.
  std::vector<ProcessId> children_;

  mutable std::mutex mutex_;
  std::uint64_t last_halt_id_ = 0;
  std::uint64_t last_snapshot_id_ = 0;
  // Highest wave id that has been resumed (see resume_all).
  std::uint64_t resumed_through_ = 0;
  std::map<std::uint64_t, WaveInfo> halt_waves_;
  std::map<std::uint64_t, WaveInfo> snapshot_waves_;

  BreakpointId::rep_type next_breakpoint_ = 1;
  std::map<BreakpointId, BreakpointSpec> breakpoints_;
  // Unordered-CP gathering: satisfied term indices per breakpoint.
  std::map<BreakpointId, std::set<std::uint32_t>> satisfied_terms_;
  std::vector<BreakpointHit> hits_;
  std::map<ProcessId, ProcessSnapshot> state_reports_;
  std::uint64_t markers_forwarded_ = 0;
};

}  // namespace ddbg
