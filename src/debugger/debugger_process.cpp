#include "debugger/debugger_process.hpp"

#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

namespace {

// Arm spans are keyed by (breakpoint, target process): span_begin here when
// the arm command leaves the debugger, span_end in the target's shim when
// the watch is installed.
std::uint64_t arm_span_key(BreakpointId bp, ProcessId target) {
  return obs::MetricsRegistry::key(bp.value(), target.value());
}

}  // namespace

void DebuggerProcess::on_start(ProcessContext& ctx) {
  topology_ = &ctx.topology();
  self_ = ctx.self();
  DDBG_ASSERT(topology_->has_debugger() && topology_->is_debugger(self_),
              "DebuggerProcess must occupy the topology's debugger slot");
  const auto children = topology_->tier_children(self_);
  children_.assign(children.begin(), children.end());
  if (auto* m = ctx.metrics()) m->observe_tree_fanout(children_.size());
}

void DebuggerProcess::on_message(ProcessContext& ctx, ChannelId in,
                                 Message message) {
  switch (message.kind) {
    case MessageKind::kHaltMarker:
      DDBG_ASSERT(message.halt.has_value(), "halt marker without data");
      handle_halt_marker(ctx, in, *message.halt);
      return;
    case MessageKind::kSnapshotMarker:
      DDBG_ASSERT(message.snapshot.has_value(), "snapshot marker w/o data");
      handle_snapshot_marker(ctx, in, *message.snapshot);
      return;
    case MessageKind::kControl: {
      auto command = Command::decode(message.payload);
      if (!command.ok()) {
        DDBG_ERROR() << "debugger: bad control message: "
                     << command.error().to_string();
        return;
      }
      handle_command(ctx, std::move(command).value());
      return;
    }
    default:
      DDBG_WARN() << "debugger: unexpected " << to_string(message.kind);
  }
}

ProcessId DebuggerProcess::route_child(ProcessId target) const {
  for (const ProcessId child : children_) {
    const auto [lo, hi] = topology_->tier_user_range(child);
    if (target.value() >= lo && target.value() < hi) return child;
  }
  DDBG_ASSERT(false, "control target outside every tier child's subtree");
  return ProcessId();
}

void DebuggerProcess::send_control(ProcessContext& ctx, ProcessId target,
                                   const Command& command) {
  const ProcessId child = route_child(target);
  if (child == target) {
    // Flat mode, or a user directly under the root: one hop.
    ctx.send(topology_->control_to(target),
             Message::control(command.encode()));
    return;
  }
  // Tree mode: wrap in a unicast envelope; the aggregators route it down to
  // the leaf that owns `target`.
  ctx.send(topology_->control_to(child),
           Message::control(
               Command::tier_unicast(target, command.encode()).encode()));
}

void DebuggerProcess::broadcast_control(ProcessContext& ctx,
                                        const Command& command) {
  const Bytes encoded = command.encode();
  Bytes envelope;  // built lazily: flat topologies never need it
  for (const ProcessId child : children_) {
    if (topology_->is_aggregator(child)) {
      if (envelope.empty()) {
        envelope = Command::tier_broadcast(encoded).encode();
      }
      ctx.send(topology_->control_to(child), Message::control(envelope));
    } else {
      ctx.send(topology_->control_to(child), Message::control(encoded));
    }
  }
}

DebuggerProcess::WaveInfo& DebuggerProcess::wave_entry(
    std::map<std::uint64_t, WaveInfo>& waves, std::uint64_t id,
    ProcessContext& ctx) {
  auto [it, inserted] = waves.try_emplace(id);
  if (inserted) {
    it->second.id = id;
    it->second.started_at = ctx.now();
    it->second.state = GlobalState(HaltId(id));
    if (auto* m = ctx.metrics()) {
      m->span_begin(&waves == &halt_waves_ ? obs::Span::kHaltWave
                                           : obs::Span::kSnapshotWave,
                    id, ctx.now());
    }
  }
  return it->second;
}

void DebuggerProcess::forward_wave(ProcessContext& ctx, ProcessId origin,
                                   const Message& marker) {
  std::size_t sent = 0;
  for (const ProcessId child : children_) {
    // An aggregator child that relayed this wave up already flooded its own
    // subtree; echoing it back would only bounce.  A *user* child always
    // gets the marker, even the originator — it needs one on its control
    // in-channel to close that channel's recorded state (Lemma 2.2).
    if (child == origin && topology_->is_aggregator(child)) {
      if (auto* m = ctx.metrics()) m->on_marker_suppressed();
      continue;
    }
    ctx.send(topology_->control_to(child), marker);
    ++sent;
  }
  std::lock_guard<std::mutex> guard{mutex_};
  markers_forwarded_ += sent;
}

void DebuggerProcess::handle_halt_marker(ProcessContext& ctx, ChannelId in,
                                         const HaltMarkerData& data) {
  // All mutating entry points run on the debugger's own thread; mutex_ only
  // shields the state observer threads read.  Never hold it across
  // ctx.send — on the TCP runtime that is a potentially-blocking socket
  // write, and an observer poll loop would stall behind it.
  bool adopted = false;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (data.halt_id.value() > last_halt_id_) {
      // New wave: adopt it and run the forwarding half of the Halt Routine
      // — but never halt (section 2.2.3: "the debugger process d never
      // really halts").  Forwarding down every tier edge is what reaches
      // the processes the application topology cannot.
      last_halt_id_ = data.halt_id.value();
      wave_entry(halt_waves_, last_halt_id_, ctx);
      adopted = true;
    }
  }
  if (adopted) {
    std::vector<ProcessId> path = data.halt_path;
    path.push_back(self_);
    forward_wave(ctx, topology_->channel(in).source,
                 Message::halt_marker(data.halt_id, path));
  }
  // Markers of the current or older waves need no action here; the
  // per-process halt paths are collected from the halt reports.
}

void DebuggerProcess::handle_snapshot_marker(ProcessContext& ctx, ChannelId in,
                                             const SnapshotMarkerData& data) {
  bool adopted = false;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (data.snapshot_id > last_snapshot_id_) {
      last_snapshot_id_ = data.snapshot_id;
      wave_entry(snapshot_waves_, last_snapshot_id_, ctx);
      adopted = true;
    }
  }
  if (adopted) {
    forward_wave(ctx, topology_->channel(in).source,
                 Message::snapshot_marker(data.snapshot_id));
  }
}

void DebuggerProcess::check_wave_complete(ProcessContext& ctx, WaveInfo& wave,
                                          bool halt) {
  if (wave.complete || wave.state.size() != topology_->num_user_processes()) {
    return;
  }
  wave.complete = true;
  wave.completed_at = ctx.now();
  if (auto* m = ctx.metrics()) {
    m->span_end(halt ? obs::Span::kHaltWave : obs::Span::kSnapshotWave,
                wave.id, ctx.now());
  }
  if (halt) {
    DDBG_INFO() << "debugger: halt wave " << wave.id << " complete at "
                << to_string(wave.completed_at);
    // Record the assembled S_h: the replay log's ground truth for "the
    // consistent cut this run actually took" (Theorem-2 comparison target).
    if (replay_sink_ != nullptr) {
      replay_sink_->record_halt_cut(wave.id, wave.state.encode_snapshots());
    }
  }
}

void DebuggerProcess::handle_command(ProcessContext& ctx, Command command) {
  switch (command.kind) {
    case CommandKind::kHaltReport: {
      std::lock_guard<std::mutex> guard{mutex_};
      WaveInfo& wave = wave_entry(halt_waves_, command.wave_id, ctx);
      DDBG_ASSERT(command.report.has_value(), "halt report without snapshot");
      wave.halt_paths[command.reporter] = command.report->halt_path;
      wave.state.add(std::move(*command.report));
      check_wave_complete(ctx, wave, /*halt=*/true);
      return;
    }
    case CommandKind::kAggregatedHaltReport: {
      // Convergecast: a child aggregator's merged subtree arrives as one
      // report; every snapshot moves straight into the assembling S_h.
      std::lock_guard<std::mutex> guard{mutex_};
      WaveInfo& wave = wave_entry(halt_waves_, command.wave_id, ctx);
      for (ProcessSnapshot& snapshot : command.reports) {
        wave.halt_paths[snapshot.process] = snapshot.halt_path;
        wave.state.add(std::move(snapshot));
      }
      check_wave_complete(ctx, wave, /*halt=*/true);
      return;
    }
    case CommandKind::kSnapshotReport: {
      std::lock_guard<std::mutex> guard{mutex_};
      WaveInfo& wave = wave_entry(snapshot_waves_, command.wave_id, ctx);
      DDBG_ASSERT(command.report.has_value(),
                  "snapshot report without snapshot");
      wave.state.add(std::move(*command.report));
      check_wave_complete(ctx, wave, /*halt=*/false);
      return;
    }
    case CommandKind::kAggregatedSnapshotReport: {
      std::lock_guard<std::mutex> guard{mutex_};
      WaveInfo& wave = wave_entry(snapshot_waves_, command.wave_id, ctx);
      for (ProcessSnapshot& snapshot : command.reports) {
        wave.state.add(std::move(snapshot));
      }
      check_wave_complete(ctx, wave, /*halt=*/false);
      return;
    }
    case CommandKind::kBreakpointHit: {
      if (auto* m = ctx.metrics()) {
        m->span_end(obs::Span::kBreakpointNotify,
                    arm_span_key(command.breakpoint, command.reporter),
                    ctx.now());
      }
      bool rearm = false;
      BreakpointSpec spec;
      {
        std::lock_guard<std::mutex> guard{mutex_};
        hits_.push_back(BreakpointHit{command.breakpoint, command.reporter,
                                      command.text, ctx.now()});
        auto it = breakpoints_.find(command.breakpoint);
        if (it != breakpoints_.end() &&
            it->second.action == BreakpointAction::kMonitor) {
          // EDL-style abstract event (section 4): record the occurrence and
          // re-arm the chain so the recognizer keeps running.
          rearm = true;
          spec = it->second;
        }
      }
      if (rearm) arm_spec(ctx, command.breakpoint, spec);
      return;
    }
    case CommandKind::kNotifySatisfied: {
      bool all_satisfied = false;
      bool monitor = false;
      {
        std::lock_guard<std::mutex> guard{mutex_};
        auto spec = breakpoints_.find(command.breakpoint);
        if (spec == breakpoints_.end()) return;  // fired already or cleared
        monitor = spec->second.action == BreakpointAction::kMonitor;
        auto& satisfied = satisfied_terms_[command.breakpoint];
        satisfied.insert(command.stage_index);
        all_satisfied =
            satisfied.size() == spec->second.conjunctive.terms.size();
        if (all_satisfied) {
          hits_.push_back(BreakpointHit{
              command.breakpoint, command.reporter,
              "unordered conjunction gathered at debugger", ctx.now()});
          if (monitor) {
            // Abstract event: reset the gather; the notify watches persist.
            satisfied_terms_[command.breakpoint].clear();
          } else {
            // One-shot: drop the breakpoint so the notifications still in
            // flight cannot re-trigger a second wave on top of this one.
            breakpoints_.erase(spec);
            satisfied_terms_.erase(command.breakpoint);
          }
        }
      }
      // The unordered-CP interpretation: once every term has been reported
      // satisfied, halt.  The gather is inherently late — experiment E8
      // measures by how much.
      if (all_satisfied && !monitor) {
        broadcast_control(ctx, Command::disarm(command.breakpoint));
        initiate_halt(ctx);
      }
      return;
    }
    case CommandKind::kRouteMarker: {
      // Predicate-marker routing for process pairs with no direct channel.
      if (auto* m = ctx.metrics()) {
        m->span_begin(obs::Span::kArm,
                      arm_span_key(command.breakpoint, command.target),
                      ctx.now());
      }
      send_control(ctx, command.target,
                   Command::arm_predicate(command.breakpoint,
                                          command.predicate,
                                          command.stage_index,
                                          command.monitor));
      return;
    }
    case CommandKind::kStateReport: {
      std::lock_guard<std::mutex> guard{mutex_};
      DDBG_ASSERT(command.report.has_value(), "state report without snapshot");
      state_reports_[command.reporter] = *command.report;
      return;
    }
    default:
      DDBG_WARN() << "debugger: unexpected command "
                  << to_string(command.kind);
  }
}

namespace {

// Every process a spec names must exist as a user process; otherwise the
// arm commands would target nonexistent control channels.
bool spec_targets_valid(const BreakpointSpec& spec,
                        std::uint32_t num_user_processes) {
  auto all_valid = [num_user_processes](const std::vector<ProcessId>& ids) {
    for (const ProcessId p : ids) {
      if (p.value() >= num_user_processes) return false;
    }
    return true;
  };
  if (spec.kind == BreakpointSpec::Kind::kLinked) {
    if (spec.linked.empty()) return false;
    for (const auto& stage : spec.linked.stages) {
      if (stage.dp.alternatives.empty()) return false;
      if (!all_valid(stage.dp.involved_processes())) return false;
    }
    return true;
  }
  return !spec.conjunctive.terms.empty() &&
         all_valid(spec.conjunctive.involved_processes());
}

}  // namespace

BreakpointId DebuggerProcess::set_breakpoint(ProcessContext& ctx,
                                             const BreakpointSpec& spec) {
  if (!spec_targets_valid(spec, topology_->num_user_processes())) {
    DDBG_WARN() << "debugger: breakpoint names a process outside the "
                   "topology or is empty: "
                << spec.describe();
    return BreakpointId();  // invalid
  }
  BreakpointId bp;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    bp = BreakpointId(next_breakpoint_++);
    breakpoints_[bp] = spec;
  }
  arm_spec(ctx, bp, spec);
  return bp;
}

void DebuggerProcess::arm_spec(ProcessContext& ctx, BreakpointId bp,
                               const BreakpointSpec& spec) {
  const bool monitor = spec.action == BreakpointAction::kMonitor;
  auto trace_arm = [&](ProcessId target) {
    if (auto* m = ctx.metrics()) {
      m->span_begin(obs::Span::kArm, arm_span_key(bp, target), ctx.now());
    }
  };
  if (spec.kind == BreakpointSpec::Kind::kLinked) {
    // The Predicate-Marker-Sending Rule: ship the LP to every process
    // involved in the first DP.
    const LinkedPredicate lp = spec.linked.expanded();
    const Bytes encoded = lp.encode_to_bytes();
    for (const ProcessId p : lp.first().involved_processes()) {
      trace_arm(p);
      send_control(ctx, p, Command::arm_predicate(bp, encoded, 0, monitor));
    }
    return;
  }
  if (spec.mode == ConjunctionMode::kOrdered) {
    // Ordered interpretation: every permutation chain is armed; whichever
    // interleaving the execution produces, some chain walks it.
    auto chains = spec.conjunctive.compile_ordered();
    if (!chains.ok()) {
      DDBG_ERROR() << "debugger: " << chains.error().to_string();
      return;
    }
    for (const LinkedPredicate& lp : chains.value()) {
      const Bytes encoded = lp.encode_to_bytes();
      for (const ProcessId p : lp.first().involved_processes()) {
        trace_arm(p);
        send_control(ctx, p, Command::arm_predicate(bp, encoded, 0, monitor));
      }
    }
    return;
  }
  // Unordered interpretation: persistent notify watches, gathered here.
  for (std::uint32_t i = 0; i < spec.conjunctive.terms.size(); ++i) {
    const SimplePredicate& sp = spec.conjunctive.terms[i];
    ByteWriter writer;
    sp.encode(writer);
    trace_arm(sp.process);
    send_control(ctx, sp.process,
                 Command::arm_notify(bp, std::move(writer).take(), i));
  }
}

void DebuggerProcess::clear_breakpoint(ProcessContext& ctx, BreakpointId bp) {
  {
    std::lock_guard<std::mutex> guard{mutex_};
    breakpoints_.erase(bp);
    satisfied_terms_.erase(bp);
  }
  broadcast_control(ctx, Command::disarm(bp));
}

std::uint64_t DebuggerProcess::initiate_halt(ProcessContext& ctx) {
  std::uint64_t wave = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    wave = ++last_halt_id_;
    wave_entry(halt_waves_, wave, ctx);
    markers_forwarded_ += children_.size();
  }
  for (const ProcessId child : children_) {
    ctx.send(topology_->control_to(child),
             Message::halt_marker(HaltId(wave), {self_}));
  }
  return wave;
}

std::uint64_t DebuggerProcess::initiate_snapshot(ProcessContext& ctx) {
  std::uint64_t wave = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    wave = ++last_snapshot_id_;
    wave_entry(snapshot_waves_, wave, ctx);
    markers_forwarded_ += children_.size();
  }
  for (const ProcessId child : children_) {
    ctx.send(topology_->control_to(child), Message::snapshot_marker(wave));
  }
  return wave;
}

void DebuggerProcess::resume_all(ProcessContext& ctx) {
  std::uint64_t wave = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    wave = last_halt_id_;
    // Waves up to here are over: latest_halt_complete() now refers to the
    // *next* wave, so a session can wait for a fresh halt after resuming.
    resumed_through_ = wave;
  }
  if (wave == 0) return;
  broadcast_control(ctx, Command::resume(wave));
}

void DebuggerProcess::query_state(ProcessContext& ctx, ProcessId target) {
  {
    // Drop any previous report so a waiter sees only the fresh answer.
    std::lock_guard<std::mutex> guard{mutex_};
    state_reports_.erase(target);
  }
  send_control(ctx, target, Command::query_state());
}

std::uint64_t DebuggerProcess::last_halt_id() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return last_halt_id_;
}

bool DebuggerProcess::halt_complete(std::uint64_t wave) const {
  std::lock_guard<std::mutex> guard{mutex_};
  auto it = halt_waves_.find(wave);
  return it != halt_waves_.end() && it->second.complete;
}

bool DebuggerProcess::latest_halt_complete() const {
  std::lock_guard<std::mutex> guard{mutex_};
  if (last_halt_id_ == 0 || last_halt_id_ <= resumed_through_) return false;
  auto it = halt_waves_.find(last_halt_id_);
  return it != halt_waves_.end() && it->second.complete;
}

std::optional<DebuggerProcess::WaveInfo> DebuggerProcess::halt_wave(
    std::uint64_t wave) const {
  std::lock_guard<std::mutex> guard{mutex_};
  auto it = halt_waves_.find(wave);
  if (it == halt_waves_.end()) return std::nullopt;
  return it->second;
}

std::optional<DebuggerProcess::WaveInfo> DebuggerProcess::latest_halt_wave()
    const {
  std::lock_guard<std::mutex> guard{mutex_};
  if (last_halt_id_ == 0) return std::nullopt;
  auto it = halt_waves_.find(last_halt_id_);
  if (it == halt_waves_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t DebuggerProcess::last_snapshot_id() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return last_snapshot_id_;
}

bool DebuggerProcess::snapshot_complete(std::uint64_t wave) const {
  std::lock_guard<std::mutex> guard{mutex_};
  auto it = snapshot_waves_.find(wave);
  return it != snapshot_waves_.end() && it->second.complete;
}

std::optional<DebuggerProcess::WaveInfo> DebuggerProcess::snapshot_wave(
    std::uint64_t wave) const {
  std::lock_guard<std::mutex> guard{mutex_};
  auto it = snapshot_waves_.find(wave);
  if (it == snapshot_waves_.end()) return std::nullopt;
  return it->second;
}

std::vector<DebuggerProcess::BreakpointHit> DebuggerProcess::hits() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return hits_;
}

std::size_t DebuggerProcess::hit_count(BreakpointId bp) const {
  std::lock_guard<std::mutex> guard{mutex_};
  std::size_t count = 0;
  for (const BreakpointHit& hit : hits_) {
    if (hit.breakpoint == bp) ++count;
  }
  return count;
}

std::optional<ProcessSnapshot> DebuggerProcess::state_report(
    ProcessId process) const {
  std::lock_guard<std::mutex> guard{mutex_};
  auto it = state_reports_.find(process);
  if (it == state_reports_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t DebuggerProcess::markers_forwarded() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return markers_forwarded_;
}

}  // namespace ddbg
