#include "debugger/session_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ddbg {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SessionClient::~SessionClient() { close(); }

void SessionClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SessionClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Error(ErrorCode::kInternal,
                 std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    return Error(ErrorCode::kInternal,
                 "connect to 127.0.0.1:" + std::to_string(port) + ": " +
                     std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  parser_ = FrameParser();
  return Status::ok_status();
}

Result<SessionResponse> SessionClient::call(SessionOp op, std::string text,
                                            std::int64_t number,
                                            Duration timeout) {
  if (fd_ < 0) {
    return Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  SessionRequest request;
  request.req_id = next_req_id_++;
  request.op = op;
  request.text = std::move(text);
  request.number = number;

  Bytes frame;
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  request.encode(writer);
  end_frame(frame, header_at);
  if (!send_all(fd_, frame.data(), frame.size())) {
    return Error(ErrorCode::kInternal, "send failed: connection lost");
  }

  timeval tv{};
  tv.tv_sec = timeout.ns / 1'000'000'000;
  tv.tv_usec = (timeout.ns % 1'000'000'000) / 1'000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::uint8_t chunk[4096];
  while (true) {
    if (const auto body = parser_.next()) {
      auto response = SessionResponse::decode(*body);
      if (!response.ok()) return response.error();
      if (response.value().req_id != request.req_id) {
        return Error(ErrorCode::kInternal,
                     "response id " +
                         std::to_string(response.value().req_id) +
                         " does not match request " +
                         std::to_string(request.req_id));
      }
      return std::move(response).value();
    }
    if (parser_.corrupt()) {
      return Error(ErrorCode::kParseError, "corrupt response frame");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      parser_.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Error(ErrorCode::kTimeout, "no response within " +
                                            std::to_string(timeout.ns /
                                                           1'000'000) +
                                            "ms");
    }
    return Error(ErrorCode::kShutdown, "server closed the connection");
  }
}

}  // namespace ddbg
