// An interior node of the debugger tier (see Topology::with_debugger_tree).
//
// The paper's single debugger process `d` owns one control channel pair per
// user process, so adopting a wave costs O(n) sends from one process and
// collecting the halted state costs O(n) receives into one process.  The
// tier splits both: halt/snapshot markers and control commands broadcast
// down the spanning tree, completion reports convergecast back up with each
// aggregator merging its subtree's ProcessSnapshots into one GlobalState
// fragment before forwarding a single combined report.  Like `d`, an
// aggregator "never really halts" (section 2.2.3) — it only propagates and
// merges.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "core/commands.hpp"
#include "core/global_state.hpp"
#include "net/process.hpp"

namespace ddbg {

class AggregatorProcess final : public Process {
 public:
  AggregatorProcess() = default;

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  [[nodiscard]] std::string describe_state() const override {
    return "aggregator";
  }

 private:
  // One in-flight convergecast per wave: snapshots accumulate until every
  // user in this subtree has reported, then ship upward exactly once.
  struct Fragment {
    GlobalState state;
    bool forwarded = false;
  };

  void handle_halt_marker(ProcessContext& ctx, ChannelId in,
                          const HaltMarkerData& data);
  void handle_snapshot_marker(ProcessContext& ctx, ChannelId in,
                              const SnapshotMarkerData& data);
  void handle_command(ProcessContext& ctx, Message& message, Command command);
  // Broadcast a wave marker to the parent and children, skipping the tier
  // process the marker came from (it already knows this wave).
  void forward_wave(ProcessContext& ctx, ProcessId origin,
                    const Message& marker);
  void merge_report(ProcessContext& ctx, std::map<std::uint64_t, Fragment>& frags,
                    std::uint64_t wave, Command&& command, bool halt);
  // The direct tier child whose subtree covers user process `target`.
  [[nodiscard]] ProcessId route_child(ProcessId target) const;

  const Topology* topology_ = nullptr;  // bound in on_start
  ProcessId self_;
  ProcessId parent_;
  ChannelId up_channel_;  // control channel to the tier parent
  std::vector<ProcessId> children_;
  std::uint32_t subtree_users_ = 0;

  std::uint64_t last_halt_id_ = 0;
  std::uint64_t last_snapshot_id_ = 0;
  std::map<std::uint64_t, Fragment> halt_frags_;
  std::map<std::uint64_t, Fragment> snapshot_frags_;
};

}  // namespace ddbg
