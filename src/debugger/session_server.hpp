// SessionServer: the multi-client serving surface of the interactive
// debugger.
//
// The TCP runtime's control listener (TcpRuntimeConfig::on_control_accept)
// hands every accepted debugger-client socket to adopt(), which registers
// a session and spawns a service thread for it.  Each session owns a
// private DebuggerSession bound to the shared DebuggerProcess — requests
// from different clients are isolated from each other (their blocking
// waits never interleave on one session object) while the debugger's own
// mutex serializes the underlying state.  The thread speaks the
// length-prefixed request/response protocol of session_protocol.hpp until
// the client quits or its socket dies.
//
// Halt ownership: the paper's halt/resume cycle assumes the user who
// halted eventually resumes.  With many clients that user can vanish
// mid-halt (socket closed between `halt` and `resume`), which must not
// leave the target computation halted forever.  The server tracks which
// session holds the current unresumed halt; on that session's teardown
// the halt is handed off to the lowest-id surviving session (which can
// inspect and resume at leisure) or, when no session remains, released by
// resuming the computation outright.  Both outcomes are deterministic and
// surfaced in the `session` metrics block.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "debugger/session.hpp"
#include "debugger/session_protocol.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

struct SessionServerConfig {
  // Per-request deadline for blocking debugger operations (arm ack, halt
  // wave assembly, state queries).
  Duration command_timeout = Duration::seconds(5);
  // Inspect targets must be below this; 0 = unknown (skip validation and
  // let the timeout catch bad targets).
  std::uint32_t num_user_processes = 0;
};

class SessionServer {
 public:
  // `metrics` may be null (no session counters recorded).  The server
  // holds references; host/debugger/metrics must outlive it.
  SessionServer(SessionHost& host, DebuggerProcess& debugger,
                ProcessId debugger_id, obs::MetricsRegistry* metrics,
                SessionServerConfig config = {});
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  // Take ownership of an accepted client socket and serve it on its own
  // thread.  Safe to call from the TCP runtime's reactor thread; returns
  // immediately.  After stop() the fd is closed instead.
  void adopt(int fd);

  // Bindable acceptor for TcpRuntimeConfig::on_control_accept.
  [[nodiscard]] std::function<void(int)> acceptor() {
    return [this](int fd) { adopt(fd); };
  }

  // The kMetrics op answers with this supplier's JSON; unset -> error.
  void set_metrics_json_source(std::function<std::string()> source);

  // The kReplay op hands its command text ("load <path>", "run", "back",
  // "cut <k>", "status") to this handler and answers with the returned
  // report text; unset -> error.  The server stays agnostic of the replay
  // machinery (src/replay) — embedders that record wire a
  // ReplayCommandHandler in, everything else keeps the op disabled.
  void set_replay_handler(
      std::function<Result<std::string>(const std::string&)> handler);

  // Close every client socket and join every service thread.  Idempotent.
  void stop();

  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::uint64_t sessions_served() const;
  // Session id currently holding an unresumed halt; 0 = none.
  [[nodiscard]] std::uint64_t halt_owner() const;

 private:
  struct Client {
    std::uint64_t id = 0;
    int fd = -1;
    std::unique_ptr<DebuggerSession> session;
    std::thread thread;
    std::atomic<bool> done{false};
    // Wave id of this session's last completed halt: `state` and
    // `deadlock` read that wave, not whatever wave another session may
    // have started since.  0 = never halted (fall back to the latest).
    std::uint64_t halt_wave = 0;
  };

  void serve(Client& client);
  [[nodiscard]] SessionResponse handle(Client& client,
                                       const SessionRequest& request);
  // The wave this session's state/deadlock commands refer to: its own
  // last halt if it has one, otherwise the debugger's latest.
  [[nodiscard]] std::optional<DebuggerProcess::WaveInfo> session_halt_wave(
      const Client& client) const;
  // Halt-ownership teardown for a departing session (see header comment).
  void release_or_hand_off(Client& client);
  void reap_finished_locked();
  [[nodiscard]] bool send_response(int fd, const SessionResponse& response);

  SessionHost& host_;
  DebuggerProcess& debugger_;
  ProcessId debugger_id_;
  obs::MetricsRegistry* metrics_;
  SessionServerConfig config_;

  mutable std::mutex mutex_;
  // Serializes the wave-mutating ops (halt, snapshot, resume) across
  // sessions: a resume arriving while another session's halt wave is
  // still propagating would release processes mid-wave and strand the
  // wave incomplete.  Locked before mutex_ when both are needed.
  std::mutex wave_mutex_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::function<std::string()> metrics_json_;
  std::function<Result<std::string>(const std::string&)> replay_handler_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t sessions_served_ = 0;
  // Session holding the current unresumed halt (0 = none).
  std::uint64_t halt_owner_ = 0;
  bool stopped_ = false;
};

}  // namespace ddbg
