// Time-travel restore: re-materialize a halted global state S_h into a
// fresh, runnable system.
//
// The Halting Algorithm's guarantee — S_h contains the complete process
// states *and* the complete in-flight channel contents — is exactly what
// makes this possible: restore each process from its snapshot and preload
// each recorded channel message, and the restored system continues as the
// halted one would have.  (The naive-halt baseline of experiment E10 cannot
// do this: its channel contents are lost.)
//
//   auto wave = session.wait_for_halt(...);
//   SimDebugHarness fresh(topology, make_bank(n, config));
//   ASSERT_TRUE(restore_into(fresh, wave->state).ok());
//   fresh.sim().run_for(...);   // picks up where the halted run stopped
#pragma once

#include "common/result.hpp"
#include "core/global_state.hpp"
#include "debugger/harness.hpp"

namespace ddbg {

// Restore `state` into a freshly constructed (not yet run) harness whose
// topology and workload types match the one `state` was captured from.
// Process states are restored via Process::restore_state and recorded
// channel contents are preloaded into the simulator's channels.
[[nodiscard]] Status restore_into(SimDebugHarness& harness,
                                  const GlobalState& state);

}  // namespace ddbg
