#include "debugger/harness.hpp"

#include "debugger/aggregator.hpp"

namespace ddbg {

namespace {

struct WiredSystem {
  Topology topology;  // with debugger (tier)
  std::vector<ProcessPtr> processes;
  DebuggerProcess* debugger = nullptr;
};

WiredSystem wire(const Topology& user_topology, std::vector<ProcessPtr> users,
                 std::uint32_t debugger_fanout,
                 DebugShim::Options shim_options,
                 std::shared_ptr<std::atomic<std::size_t>> armed_count,
                 ReplaySink* replay = nullptr) {
  // Count armed watches harness-wide, chaining any hook the caller set.
  // The counter outlives the shims via shared ownership, and the hook runs
  // on process threads — hence the atomic.
  shim_options.on_armed = [armed_count = std::move(armed_count),
                           user_hook = std::move(shim_options.on_armed)](
                              ProcessId p, BreakpointId bp) {
    armed_count->fetch_add(1, std::memory_order_acq_rel);
    if (user_hook) user_hook(p, bp);
  };
  // Record mode: every shim logs its user-boundary inputs, the debugger
  // logs completed halt cuts.  (The harness owns the sink's lifetime.)
  if (replay != nullptr) shim_options.replay_record = replay;
  WiredSystem wired;
  wired.topology = debugger_fanout == 0
                       ? user_topology.with_debugger()
                       : user_topology.with_debugger_tree(debugger_fanout);
  wired.processes =
      wrap_in_shims(wired.topology, std::move(users), std::move(shim_options));
  // Tier processes occupy the slots after the users, root (the debugger)
  // last; process ids must line up with the topology's slots.
  for (std::uint32_t i = 0; i < wired.topology.num_aggregators(); ++i) {
    wired.processes.push_back(std::make_unique<AggregatorProcess>());
  }
  auto debugger = std::make_unique<DebuggerProcess>();
  debugger->set_replay_sink(replay);
  wired.debugger = debugger.get();
  wired.processes.push_back(std::move(debugger));
  return wired;
}

}  // namespace

SimDebugHarness::SimDebugHarness(const Topology& user_topology,
                                 std::vector<ProcessPtr> users,
                                 HarnessConfig config) {
  replay_ = config.replay;
  WiredSystem wired = wire(user_topology, std::move(users),
                           config.debugger_fanout,
                           std::move(config.shim_options), armed_count_,
                           replay_.get());
  debugger_ = wired.debugger;
  debugger_id_ = wired.topology.debugger_id();

  SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.latency = std::move(config.latency);
  sim_config.faults = std::move(config.faults);
  sim_config.reliable = config.reliable;
  sim_config.workers = config.workers;
  sim_ = std::make_unique<Simulation>(std::move(wired.topology),
                                      std::move(wired.processes),
                                      std::move(sim_config));
  host_ = std::make_unique<SimHost>(*sim_);
  session_ =
      std::make_unique<DebuggerSession>(*host_, *debugger_, debugger_id_);
}

DebugShim& SimDebugHarness::shim(ProcessId p) {
  auto* shim = dynamic_cast<DebugShim*>(&sim_->process(p));
  DDBG_ASSERT(shim != nullptr, "process is not wrapped in a DebugShim");
  return *shim;
}

RuntimeDebugHarness::RuntimeDebugHarness(const Topology& user_topology,
                                         std::vector<ProcessPtr> users,
                                         HarnessConfig config) {
  replay_ = config.replay;
  WiredSystem wired = wire(user_topology, std::move(users),
                           config.debugger_fanout,
                           std::move(config.shim_options), armed_count_,
                           replay_.get());
  debugger_ = wired.debugger;
  debugger_id_ = wired.topology.debugger_id();

  RuntimeConfig runtime_config;
  runtime_config.seed = config.seed;
  runtime_config.faults = std::move(config.faults);
  runtime_config.reliable = config.reliable;
  runtime_config.replay = replay_;
  runtime_ = std::make_unique<Runtime>(std::move(wired.topology),
                                       std::move(wired.processes),
                                       runtime_config);
  host_ = std::make_unique<RuntimeHost>(*runtime_);
  session_ =
      std::make_unique<DebuggerSession>(*host_, *debugger_, debugger_id_);
}

RuntimeDebugHarness::~RuntimeDebugHarness() { shutdown(); }

DebugShim& RuntimeDebugHarness::shim(ProcessId p) {
  auto* shim = dynamic_cast<DebugShim*>(&runtime_->process(p));
  DDBG_ASSERT(shim != nullptr, "process is not wrapped in a DebugShim");
  return *shim;
}

TcpDebugHarness::TcpDebugHarness(const Topology& user_topology,
                                 std::vector<ProcessPtr> users,
                                 HarnessConfig config) {
  replay_ = config.replay;
  WiredSystem wired = wire(user_topology, std::move(users),
                           config.debugger_fanout,
                           std::move(config.shim_options), armed_count_,
                           replay_.get());
  debugger_ = wired.debugger;
  debugger_id_ = wired.topology.debugger_id();

  TcpRuntimeConfig tcp_config;
  tcp_config.seed = config.seed;
  tcp_config.faults = std::move(config.faults);
  tcp_config.reliable = config.reliable;
  tcp_config.replay = replay_;
  tcp_ = std::make_unique<TcpRuntime>(std::move(wired.topology),
                                      std::move(wired.processes),
                                      tcp_config);
  host_ = std::make_unique<TcpHost>(*tcp_);
  session_ =
      std::make_unique<DebuggerSession>(*host_, *debugger_, debugger_id_);
}

TcpDebugHarness::~TcpDebugHarness() { shutdown(); }

DebugShim& TcpDebugHarness::shim(ProcessId p) {
  auto* shim = dynamic_cast<DebugShim*>(&tcp_->process(p));
  DDBG_ASSERT(shim != nullptr, "process is not wrapped in a DebugShim");
  return *shim;
}

}  // namespace ddbg
