// The ddbg command language: one parser and one driver loop shared by the
// interactive CLI (tools/ddbg.cpp), its batch mode, and the in-process
// example (examples/interactive.cpp), so every front end speaks the exact
// same commands.
//
//   break <expr>     arm a breakpoint (core/predicate_parser.hpp syntax)
//   clear <id>       remove breakpoint <id>
//   halt             initiate a halt wave, wait for a complete S_h
//   state            print the latest complete halt state
//   snapshot         take a C&L recording wave (monitor-only)
//   inspect <pid>    query one process's current state ("p3" or "3")
//   deadlock         run deadlock analysis on the latest halt state
//   hits             list breakpoint hits recorded so far
//   metrics          dump the target's ddbg.metrics.v1 JSON
//   resume           resume the halted computation
//   quit             end the session
//   help             list commands (handled locally, no round trip)
//   expect <substr>  (batch) assert <substr> appears in the last response
//   # ...            comment; blank lines are ignored
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "debugger/session_client.hpp"
#include "debugger/session_protocol.hpp"

namespace ddbg {

struct ReplLine {
  enum class Kind {
    kEmpty,    // blank or comment
    kHelp,     // handled locally
    kExpect,   // batch assertion against the previous response text
    kCommand,  // a protocol round trip
  };
  Kind kind = Kind::kEmpty;
  SessionOp op = SessionOp::kHello;
  std::string text;          // kBreak expression / kExpect substring
  std::int64_t number = 0;   // kClear / kInspect operand
};

// Parse one input line; kParseError explains unknown commands and missing
// or malformed operands.
[[nodiscard]] Result<ReplLine> parse_repl_line(std::string_view line);

[[nodiscard]] std::string repl_help();

// Stable process exit codes, shared by the CLI's --batch contract.
inline constexpr int kReplExitOk = 0;
inline constexpr int kReplExitConnect = 2;   // used by the CLI front end
inline constexpr int kReplExitCommand = 3;   // command or protocol error
inline constexpr int kReplExitAssert = 4;    // expect/--assert failed
inline constexpr int kReplExitTimeout = 5;   // response deadline missed

struct ReplConfig {
  // Interactive: print a prompt, report errors and keep going.  Batch:
  // echo each command, stop at the first failure with the matching exit
  // code.
  bool interactive = true;
  std::string prompt = "ddbg> ";
  // When set, every response text is appended here (the CLI checks its
  // --assert substrings against this transcript).
  std::vector<std::string>* transcript = nullptr;
};

// Drive a session from `in` until quit/EOF/failure; returns a kReplExit*
// code.  Sends a kHello first and prints the banner.
int run_repl(SessionClient& client, std::istream& in, std::ostream& out,
             const ReplConfig& config);

}  // namespace ddbg
