// DebuggerSession: the programmer-facing API of the interactive debugger.
//
// A session drives a DebuggerProcess that is running inside either the
// deterministic simulator or the multithreaded runtime; the difference is
// abstracted by SessionHost (post a closure into the debugger's context,
// wait for a condition).  On the simulator, "waiting" means advancing
// virtual time, so scripted debugging sessions are fully deterministic.
//
//   DebuggerSession session(host, debugger, topology.debugger_id());
//   auto bp = session.set_breakpoint("p0:event(token) -> p2:recv");
//   auto halted = session.wait_for_halt(Duration::seconds(5));
//   ...inspect halted->state...
//   session.resume();
#pragma once

#include <functional>
#include <optional>
#include <string_view>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/time.hpp"
#include "core/predicate.hpp"
#include "core/predicate_parser.hpp"
#include "debugger/debugger_process.hpp"
#include "net/process.hpp"

namespace ddbg {

class SessionHost {
 public:
  virtual ~SessionHost() = default;
  // Run `action` in `target`'s process context, serialized with its
  // handlers.
  virtual void post(ProcessId target,
                    std::function<void(ProcessContext&, Process&)> action) = 0;
  // Block (or advance virtual time) until `condition` holds or `timeout`
  // elapses; returns whether it held.
  virtual bool wait(const std::function<bool()>& condition,
                    Duration timeout) = 0;
};

class DebuggerSession {
 public:
  DebuggerSession(SessionHost& host, DebuggerProcess& debugger,
                  ProcessId debugger_id)
      : host_(host), debugger_(debugger), debugger_id_(debugger_id) {}

  // ---- breakpoints ----
  // Parse and register a breakpoint from the text syntax (see
  // core/predicate_parser.hpp).  Arming is asynchronous; the returned id is
  // final.  Failures are distinguishable by code: kParseError carries
  // "syntax error at column k", kTimeout means the debugger never
  // acknowledged the registration, kInvalidArgument means the expression
  // parsed but names a process outside the topology.
  Result<BreakpointId> set_breakpoint(std::string_view expression,
                                      Duration timeout = Duration::seconds(5));
  // Register an already-parsed spec, with the same kTimeout /
  // kInvalidArgument distinction.
  Result<BreakpointId> arm_breakpoint(const BreakpointSpec& spec,
                                      Duration timeout = Duration::seconds(5));
  BreakpointId set_breakpoint(const BreakpointSpec& spec,
                              Duration timeout = Duration::seconds(5));
  void clear_breakpoint(BreakpointId bp);

  // ---- halting ----
  // Ask the debugger to halt the whole computation now.
  void halt();
  // Wait until the current halting wave has assembled a complete S_h.
  std::optional<DebuggerProcess::WaveInfo> wait_for_halt(Duration timeout);
  // Resume the halted computation.  Returns once the debugger has issued
  // the resume commands, so a following wait_for_halt() refers to the next
  // wave, not the one just resumed.
  void resume(Duration timeout = Duration::seconds(5));

  // ---- recording (C&L, monitor-only) ----
  std::optional<DebuggerProcess::WaveInfo> take_snapshot(Duration timeout);

  // ---- inspection ----
  std::optional<ProcessSnapshot> inspect(ProcessId process, Duration timeout);
  [[nodiscard]] std::vector<DebuggerProcess::BreakpointHit> hits() const {
    return debugger_.hits();
  }
  [[nodiscard]] DebuggerProcess& debugger() { return debugger_; }

 private:
  // Post to the debugger and wait for the closure to have run.
  bool call(std::function<void(ProcessContext&)> action, Duration timeout);

  SessionHost& host_;
  DebuggerProcess& debugger_;
  ProcessId debugger_id_;
};

}  // namespace ddbg
