#include "debugger/session.hpp"

#include <atomic>
#include <memory>
#include <string>

namespace ddbg {

bool DebuggerSession::call(std::function<void(ProcessContext&)> action,
                           Duration timeout) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  host_.post(debugger_id_,
             [action = std::move(action), done](ProcessContext& ctx,
                                                Process&) {
               action(ctx);
               done->store(true);
             });
  return host_.wait([done] { return done->load(); }, timeout);
}

Result<BreakpointId> DebuggerSession::set_breakpoint(
    std::string_view expression, Duration timeout) {
  auto spec = parse_breakpoint(expression);
  // Parse failure and arm failure are different user mistakes; keep the
  // parse error (with its column) distinct from the timeout below.
  if (!spec.ok()) return spec.error();
  return arm_breakpoint(spec.value(), timeout);
}

Result<BreakpointId> DebuggerSession::arm_breakpoint(
    const BreakpointSpec& spec, Duration timeout) {
  auto id = std::make_shared<BreakpointId>();
  const bool acked = call(
      [this, spec, id](ProcessContext& ctx) {
        *id = debugger_.set_breakpoint(ctx, spec);
      },
      timeout);
  if (!acked) {
    return Error(ErrorCode::kTimeout,
                 "target did not ack arm within " +
                     std::to_string(timeout.ns / 1'000'000) + "ms");
  }
  if (!id->valid()) {
    return Error(ErrorCode::kInvalidArgument,
                 "breakpoint names a process outside the topology");
  }
  return *id;
}

BreakpointId DebuggerSession::set_breakpoint(const BreakpointSpec& spec,
                                             Duration timeout) {
  auto id = std::make_shared<BreakpointId>();
  call(
      [this, spec, id](ProcessContext& ctx) {
        *id = debugger_.set_breakpoint(ctx, spec);
      },
      timeout);
  return *id;
}

void DebuggerSession::clear_breakpoint(BreakpointId bp) {
  host_.post(debugger_id_, [this, bp](ProcessContext& ctx, Process&) {
    debugger_.clear_breakpoint(ctx, bp);
  });
}

void DebuggerSession::halt() {
  host_.post(debugger_id_, [this](ProcessContext& ctx, Process&) {
    debugger_.initiate_halt(ctx);
  });
}

std::optional<DebuggerProcess::WaveInfo> DebuggerSession::wait_for_halt(
    Duration timeout) {
  const bool complete = host_.wait(
      [this] { return debugger_.latest_halt_complete(); }, timeout);
  if (!complete) return std::nullopt;
  return debugger_.latest_halt_wave();
}

void DebuggerSession::resume(Duration timeout) {
  call([this](ProcessContext& ctx) { debugger_.resume_all(ctx); }, timeout);
}

std::optional<DebuggerProcess::WaveInfo> DebuggerSession::take_snapshot(
    Duration timeout) {
  auto wave = std::make_shared<std::uint64_t>(0);
  call(
      [this, wave](ProcessContext& ctx) {
        *wave = debugger_.initiate_snapshot(ctx);
      },
      timeout);
  const bool complete = host_.wait(
      [this, wave] { return debugger_.snapshot_complete(*wave); }, timeout);
  if (!complete) return std::nullopt;
  return debugger_.snapshot_wave(*wave);
}

std::optional<ProcessSnapshot> DebuggerSession::inspect(ProcessId process,
                                                        Duration timeout) {
  // Synchronously: query_state drops any stale report before the request
  // goes out, so the wait below can only observe the fresh answer.
  if (!call([this, process](
                ProcessContext& ctx) { debugger_.query_state(ctx, process); },
            timeout)) {
    return std::nullopt;
  }
  const bool arrived = host_.wait(
      [this, process] { return debugger_.state_report(process).has_value(); },
      timeout);
  if (!arrived) return std::nullopt;
  return debugger_.state_report(process);
}

}  // namespace ddbg
