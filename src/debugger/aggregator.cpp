#include "debugger/aggregator.hpp"

#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

void AggregatorProcess::on_start(ProcessContext& ctx) {
  topology_ = &ctx.topology();
  self_ = ctx.self();
  DDBG_ASSERT(topology_->is_aggregator(self_),
              "AggregatorProcess must occupy an aggregator slot");
  parent_ = topology_->tier_parent(self_);
  up_channel_ = topology_->control_from(self_);
  const auto children = topology_->tier_children(self_);
  children_.assign(children.begin(), children.end());
  const auto [lo, hi] = topology_->tier_user_range(self_);
  subtree_users_ = hi - lo;
  if (obs::MetricsRegistry* m = ctx.metrics()) {
    m->observe_tree_fanout(children_.size());
  }
}

void AggregatorProcess::on_message(ProcessContext& ctx, ChannelId in,
                                   Message message) {
  switch (message.kind) {
    case MessageKind::kHaltMarker:
      DDBG_ASSERT(message.halt.has_value(), "halt marker without data");
      handle_halt_marker(ctx, in, *message.halt);
      return;
    case MessageKind::kSnapshotMarker:
      DDBG_ASSERT(message.snapshot.has_value(), "snapshot marker w/o data");
      handle_snapshot_marker(ctx, in, *message.snapshot);
      return;
    case MessageKind::kControl: {
      auto command = Command::decode(message.payload);
      if (!command.ok()) {
        DDBG_ERROR() << "aggregator " << self_.value()
                     << ": bad control message: "
                     << command.error().to_string();
        return;
      }
      handle_command(ctx, message, std::move(command).value());
      return;
    }
    default:
      DDBG_WARN() << "aggregator " << self_.value() << ": unexpected "
                  << to_string(message.kind);
  }
}

void AggregatorProcess::forward_wave(ProcessContext& ctx, ProcessId origin,
                                     const Message& marker) {
  obs::MetricsRegistry* m = ctx.metrics();
  // Upward, unless the wave just came down from the parent: the parent
  // demonstrably knows the wave already, so the echo is pure duplicate.
  if (origin == parent_) {
    if (m) m->on_marker_suppressed();
  } else {
    ctx.send(up_channel_, marker);
  }
  for (const ProcessId child : children_) {
    // A child aggregator that sent us this wave already flooded its own
    // subtree; re-sending would bounce the marker once per tier edge.  A
    // *user* child always gets the marker even if it originated the wave —
    // it needs one on its control in-channel to close that channel's
    // recorded state (Lemma 2.2).
    if (child == origin && topology_->is_aggregator(child)) {
      if (m) m->on_marker_suppressed();
      continue;
    }
    ctx.send(topology_->control_to(child), marker);
  }
}

void AggregatorProcess::handle_halt_marker(ProcessContext& ctx, ChannelId in,
                                           const HaltMarkerData& data) {
  if (data.halt_id.value() <= last_halt_id_) return;  // known wave: ignore
  last_halt_id_ = data.halt_id.value();
  // Forward with our own name appended to the halt path (section 2.2.4),
  // exactly as the flat debugger does — aggregators never really halt.
  std::vector<ProcessId> path = data.halt_path;
  path.push_back(self_);
  forward_wave(ctx, topology_->channel(in).source,
               Message::halt_marker(data.halt_id, path));
}

void AggregatorProcess::handle_snapshot_marker(ProcessContext& ctx,
                                               ChannelId in,
                                               const SnapshotMarkerData& data) {
  if (data.snapshot_id <= last_snapshot_id_) return;
  last_snapshot_id_ = data.snapshot_id;
  forward_wave(ctx, topology_->channel(in).source,
               Message::snapshot_marker(data.snapshot_id));
}

ProcessId AggregatorProcess::route_child(ProcessId target) const {
  for (const ProcessId child : children_) {
    const auto [lo, hi] = topology_->tier_user_range(child);
    if (target.value() >= lo && target.value() < hi) return child;
  }
  DDBG_ASSERT(false, "unicast target outside this aggregator's subtree");
  return ProcessId();
}

void AggregatorProcess::merge_report(ProcessContext& ctx,
                                     std::map<std::uint64_t, Fragment>& frags,
                                     std::uint64_t wave, Command&& command,
                                     bool halt) {
  auto [it, inserted] = frags.try_emplace(wave);
  Fragment& frag = it->second;
  if (inserted) frag.state = GlobalState(HaltId(wave));
  if (command.report.has_value()) {
    // Leaf contribution from a user child.
    frag.state.add(std::move(*command.report));
  }
  for (ProcessSnapshot& snapshot : command.reports) {
    // Pre-merged fragment from a child aggregator: move, never copy.
    frag.state.add(std::move(snapshot));
  }
  if (frag.forwarded || frag.state.size() != subtree_users_) return;
  frag.forwarded = true;
  const Command up =
      halt ? Command::aggregated_halt_report(self_, wave, frag.state.take_all())
           : Command::aggregated_snapshot_report(self_, wave,
                                                 frag.state.take_all());
  ctx.send(up_channel_, Message::control(up.encode()));
  if (obs::MetricsRegistry* m = ctx.metrics()) m->on_ack_aggregated();
}

void AggregatorProcess::handle_command(ProcessContext& ctx, Message& message,
                                       Command command) {
  switch (command.kind) {
    case CommandKind::kHaltReport:
    case CommandKind::kAggregatedHaltReport:
      merge_report(ctx, halt_frags_, command.wave_id, std::move(command),
                   /*halt=*/true);
      return;
    case CommandKind::kSnapshotReport:
    case CommandKind::kAggregatedSnapshotReport:
      merge_report(ctx, snapshot_frags_, command.wave_id, std::move(command),
                   /*halt=*/false);
      return;
    case CommandKind::kBreakpointHit:
    case CommandKind::kNotifySatisfied:
    case CommandKind::kRouteMarker:
    case CommandKind::kStateReport:
      // Upward relay: already encoded, forward the payload untouched.
      ctx.send(up_channel_, Message::control(std::move(message.payload)));
      return;
    case CommandKind::kTierBroadcast:
      for (const ProcessId child : children_) {
        if (topology_->is_aggregator(child)) {
          ctx.send(topology_->control_to(child),
                   Message::control(message.payload));  // same envelope
        } else {
          ctx.send(topology_->control_to(child),
                   Message::control(command.inner));
        }
      }
      return;
    case CommandKind::kTierUnicast: {
      const ProcessId child = route_child(command.target);
      if (child == command.target) {
        ctx.send(topology_->control_to(child),
                 Message::control(std::move(command.inner)));
      } else {
        ctx.send(topology_->control_to(child),
                 Message::control(std::move(message.payload)));
      }
      return;
    }
    default:
      DDBG_WARN() << "aggregator " << self_.value() << ": unexpected command "
                  << to_string(command.kind);
  }
}

}  // namespace ddbg
