// Hosts and harnesses: one-call wiring of (topology, user processes) into a
// debuggable system on either substrate.
//
//   SimDebugHarness harness(Topology::ring(4), make_ring_processes(...));
//   harness.session().set_breakpoint("p0:event(token)");
//   harness.sim().run_for(Duration::seconds(1));
//
// The harness extends the topology with the debugger process (section
// 2.2.3), wraps every user process in a DebugShim, appends a
// DebuggerProcess, and exposes a DebuggerSession bound to the right host.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/debug_shim.hpp"
#include "debugger/debugger_process.hpp"
#include "debugger/session.hpp"
#include "runtime/runtime.hpp"
#include "runtime/tcp_runtime.hpp"
#include "sim/simulation.hpp"

namespace ddbg {

class SimHost final : public SessionHost {
 public:
  explicit SimHost(Simulation& sim) : sim_(sim) {}

  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action) override {
    sim_.post(target, std::move(action));
  }

  bool wait(const std::function<bool()>& condition,
            Duration timeout) override {
    return sim_.run_until_condition(condition, sim_.now() + timeout);
  }

 private:
  Simulation& sim_;
};

class RuntimeHost final : public SessionHost {
 public:
  explicit RuntimeHost(Runtime& runtime) : runtime_(runtime) {}

  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action) override {
    runtime_.post(target, std::move(action));
  }

  bool wait(const std::function<bool()>& condition,
            Duration timeout) override {
    return Runtime::wait_until(condition, timeout);
  }

 private:
  Runtime& runtime_;
};

class TcpHost final : public SessionHost {
 public:
  explicit TcpHost(TcpRuntime& runtime) : runtime_(runtime) {}

  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action) override {
    runtime_.post(target, std::move(action));
  }

  bool wait(const std::function<bool()>& condition,
            Duration timeout) override {
    return TcpRuntime::wait_until(condition, timeout);
  }

 private:
  TcpRuntime& runtime_;
};

struct HarnessConfig {
  std::uint64_t seed = 1;
  // 0 = flat debugger (one control channel pair per user, the paper's
  // single-`d` model).  >= 2 = hierarchical debugger tier built with
  // Topology::with_debugger_tree(fanout): users hang off leaf aggregators,
  // aggregators off higher aggregators, the root plays `d`.
  std::uint32_t debugger_fanout = 0;
  std::unique_ptr<LatencyModel> latency;  // simulator only
  DebugShim::Options shim_options;
  // Fault adversary, forwarded to the substrate (net/fault_plan.hpp).
  // Null keeps the reliable fast paths untouched.
  std::shared_ptr<FaultPlan> faults;
  ReliableConfig reliable;
  // Simulator worker threads (SimulationConfig::workers); results are
  // byte-identical for any value.  Ignored by the threaded runtime.
  std::uint32_t workers = 1;
  // Record/replay sink (src/replay): wired into every DebugShim (delivery/
  // timer records), the DebuggerProcess (halt cuts) and the substrate
  // (fault/reconnect annotations).  Null keeps every path untouched.
  std::shared_ptr<ReplaySink> replay;
};

// Deterministic-simulator harness.
class SimDebugHarness {
 public:
  SimDebugHarness(const Topology& user_topology,
                  std::vector<ProcessPtr> users, HarnessConfig config = {});

  [[nodiscard]] Simulation& sim() { return *sim_; }
  [[nodiscard]] DebuggerSession& session() { return *session_; }
  [[nodiscard]] DebuggerProcess& debugger() { return *debugger_; }
  [[nodiscard]] const Topology& topology() const {
    return sim_->topology();
  }
  [[nodiscard]] ProcessId debugger_id() const { return debugger_id_; }
  // The shim wrapping user process p.
  [[nodiscard]] DebugShim& shim(ProcessId p);
  // Breakpoint watches armed across all shims so far.
  [[nodiscard]] std::size_t armed_count() const {
    return armed_count_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<std::size_t>> armed_count_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<ReplaySink> replay_;  // keeps the recorder alive
  std::unique_ptr<Simulation> sim_;
  DebuggerProcess* debugger_ = nullptr;  // owned by sim_
  ProcessId debugger_id_;
  std::unique_ptr<SimHost> host_;
  std::unique_ptr<DebuggerSession> session_;
};

// Multithreaded-runtime harness.
class RuntimeDebugHarness {
 public:
  RuntimeDebugHarness(const Topology& user_topology,
                      std::vector<ProcessPtr> users,
                      HarnessConfig config = {});
  ~RuntimeDebugHarness();

  void start() { runtime_->start(); }
  void shutdown() { runtime_->shutdown(); }

  [[nodiscard]] Runtime& runtime() { return *runtime_; }
  [[nodiscard]] DebuggerSession& session() { return *session_; }
  [[nodiscard]] DebuggerProcess& debugger() { return *debugger_; }
  [[nodiscard]] ProcessId debugger_id() const { return debugger_id_; }
  [[nodiscard]] DebugShim& shim(ProcessId p);
  // Breakpoint watches armed across all shims so far.  Arming is
  // asynchronous (arm commands travel as control messages), so a test that
  // needs a breakpoint live before it lets traffic flow waits on this
  // rather than sleeping.
  [[nodiscard]] std::size_t armed_count() const {
    return armed_count_->load(std::memory_order_acquire);
  }
  [[nodiscard]] bool wait_for_armed(std::size_t watches, Duration timeout) {
    return Runtime::wait_until(
        [this, watches] { return armed_count() >= watches; }, timeout);
  }

 private:
  std::shared_ptr<std::atomic<std::size_t>> armed_count_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<ReplaySink> replay_;  // keeps the recorder alive
  std::unique_ptr<Runtime> runtime_;
  DebuggerProcess* debugger_ = nullptr;  // owned by runtime_
  ProcessId debugger_id_;
  std::unique_ptr<RuntimeHost> host_;
  std::unique_ptr<DebuggerSession> session_;
};

// TCP-loopback harness: the same wiring crossing real sockets.  With a
// debugger tier, every convergecast hop is a multiplexed TCP frame, so
// halt/breakpoint/resume tests at moderate N exercise the epoll reactor
// under genuine kernel backpressure.
class TcpDebugHarness {
 public:
  TcpDebugHarness(const Topology& user_topology,
                  std::vector<ProcessPtr> users, HarnessConfig config = {});
  ~TcpDebugHarness();

  [[nodiscard]] bool start() { return tcp_->start(); }
  void shutdown() { tcp_->shutdown(); }

  [[nodiscard]] TcpRuntime& tcp() { return *tcp_; }
  [[nodiscard]] DebuggerSession& session() { return *session_; }
  [[nodiscard]] DebuggerProcess& debugger() { return *debugger_; }
  [[nodiscard]] const Topology& topology() const {
    return tcp_->topology();
  }
  [[nodiscard]] ProcessId debugger_id() const { return debugger_id_; }
  [[nodiscard]] DebugShim& shim(ProcessId p);
  [[nodiscard]] std::size_t armed_count() const {
    return armed_count_->load(std::memory_order_acquire);
  }
  [[nodiscard]] bool wait_for_armed(std::size_t watches, Duration timeout) {
    return TcpRuntime::wait_until(
        [this, watches] { return armed_count() >= watches; }, timeout);
  }

 private:
  std::shared_ptr<std::atomic<std::size_t>> armed_count_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<ReplaySink> replay_;  // keeps the recorder alive
  std::unique_ptr<TcpRuntime> tcp_;
  DebuggerProcess* debugger_ = nullptr;  // owned by tcp_
  ProcessId debugger_id_;
  std::unique_ptr<TcpHost> host_;
  std::unique_ptr<DebuggerSession> session_;
};

}  // namespace ddbg
