#include "debugger/session_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <limits>
#include <utility>

#include "analysis/deadlock.hpp"
#include "net/framing.hpp"

namespace ddbg {

namespace {

// Blocking full-buffer send for response frames; a dead client fails the
// send (MSG_NOSIGNAL) and ends its session instead of raising SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string process_name(ProcessId p) {
  return "p" + std::to_string(p.value());
}

std::string describe_wave(const DebuggerProcess::WaveInfo& wave,
                          const char* what) {
  std::string out = what;
  out += " wave " + std::to_string(wave.id) + ": " +
         std::to_string(wave.state.size()) + " processes, " +
         std::to_string(wave.state.total_channel_messages()) +
         " in-flight messages";
  return out;
}

}  // namespace

SessionServer::SessionServer(SessionHost& host, DebuggerProcess& debugger,
                             ProcessId debugger_id,
                             obs::MetricsRegistry* metrics,
                             SessionServerConfig config)
    : host_(host),
      debugger_(debugger),
      debugger_id_(debugger_id),
      metrics_(metrics),
      config_(config) {}

SessionServer::~SessionServer() { stop(); }

void SessionServer::set_metrics_json_source(
    std::function<std::string()> source) {
  std::lock_guard<std::mutex> guard{mutex_};
  metrics_json_ = std::move(source);
}

void SessionServer::set_replay_handler(
    std::function<Result<std::string>(const std::string&)> handler) {
  std::lock_guard<std::mutex> guard{mutex_};
  replay_handler_ = std::move(handler);
}

void SessionServer::adopt(int fd) {
  std::unique_ptr<Client> client;
  std::size_t active = 0;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopped_) {
      ::close(fd);
      return;
    }
    reap_finished_locked();
    client = std::make_unique<Client>();
    client->id = next_session_id_++;
    client->fd = fd;
    client->session =
        std::make_unique<DebuggerSession>(host_, debugger_, debugger_id_);
    ++sessions_served_;
    clients_.push_back(std::move(client));
    Client* raw = clients_.back().get();
    raw->thread = std::thread([this, raw] { serve(*raw); });
    for (const auto& c : clients_) {
      if (!c->done.load(std::memory_order_acquire)) ++active;
    }
  }
  if (metrics_ != nullptr) {
    metrics_->on_session_opened();
    metrics_->observe_active_sessions(active);
  }
}

void SessionServer::stop() {
  std::vector<std::unique_ptr<Client>> clients;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopped_) return;
    stopped_ = true;
    clients.swap(clients_);
    // A halt held at shutdown is moot: the embedder is tearing the whole
    // target down, so teardown must not post resumes into a dying runtime.
    halt_owner_ = 0;
  }
  // Unblock every service thread's recv, then join.
  for (const auto& client : clients) ::shutdown(client->fd, SHUT_RDWR);
  for (const auto& client : clients) {
    if (client->thread.joinable()) client->thread.join();
    ::close(client->fd);
  }
}

std::size_t SessionServer::active_sessions() const {
  std::lock_guard<std::mutex> guard{mutex_};
  std::size_t active = 0;
  for (const auto& c : clients_) {
    if (!c->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

std::uint64_t SessionServer::sessions_served() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return sessions_served_;
}

std::uint64_t SessionServer::halt_owner() const {
  std::lock_guard<std::mutex> guard{mutex_};
  return halt_owner_;
}

void SessionServer::reap_finished_locked() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SessionServer::send_response(int fd, const SessionResponse& response) {
  Bytes frame;
  const std::size_t header_at = begin_frame(frame);
  ByteWriter writer(frame);
  response.encode(writer);
  end_frame(frame, header_at);
  return write_all(fd, frame.data(), frame.size());
}

void SessionServer::serve(Client& client) {
  FrameParser parser;
  std::uint8_t chunk[4096];
  bool running = true;
  while (running) {
    if (const auto body = parser.next()) {
      auto request = SessionRequest::decode(*body);
      SessionResponse response =
          request.ok() ? handle(client, request.value())
                       : SessionResponse::failure(0, request.error());
      if (metrics_ != nullptr) {
        metrics_->on_session_request(response.ok());
      }
      if (!send_response(client.fd, response)) break;
      if (request.ok() && request.value().op == SessionOp::kQuit) break;
      continue;
    }
    if (parser.corrupt()) break;
    const ssize_t n = ::recv(client.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      parser.append(
          std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    running = false;  // peer closed or socket shut down
  }
  // Deterministic teardown: a session that vanishes mid-halt must not
  // leave the target halted forever.
  release_or_hand_off(client);
  ::shutdown(client.fd, SHUT_RDWR);
  client.done.store(true, std::memory_order_release);
  if (metrics_ != nullptr) metrics_->on_session_closed();
}

void SessionServer::release_or_hand_off(Client& client) {
  bool release = false;
  {
    std::lock_guard<std::mutex> guard{mutex_};
    if (stopped_ || halt_owner_ != client.id) return;
    // Hand the held halt to the lowest-id surviving session, which keeps
    // the target inspectable for the users still attached.
    const Client* heir = nullptr;
    for (const auto& c : clients_) {
      if (c.get() == &client) continue;
      if (c->done.load(std::memory_order_acquire)) continue;
      if (heir == nullptr || c->id < heir->id) heir = c.get();
    }
    if (heir != nullptr) {
      halt_owner_ = heir->id;
    } else {
      halt_owner_ = 0;
      release = true;
    }
  }
  if (release) {
    // Last session out: resume the computation outright (under the wave
    // lock — the disconnect may race another session's propagating wave).
    std::lock_guard<std::mutex> wave_guard{wave_mutex_};
    client.session->resume(config_.command_timeout);
    if (metrics_ != nullptr) metrics_->on_halt_released_on_disconnect();
  } else if (metrics_ != nullptr) {
    metrics_->on_halt_handed_off();
  }
}

std::optional<DebuggerProcess::WaveInfo> SessionServer::session_halt_wave(
    const Client& client) const {
  if (client.halt_wave != 0) return debugger_.halt_wave(client.halt_wave);
  return debugger_.latest_halt_wave();
}

SessionResponse SessionServer::handle(Client& client,
                                      const SessionRequest& request) {
  DebuggerSession& session = *client.session;
  const Duration timeout = config_.command_timeout;
  switch (request.op) {
    case SessionOp::kHello: {
      std::string banner = "ddbg session " + std::to_string(client.id) +
                           ": attached to debugger " +
                           process_name(debugger_id_);
      if (!request.text.empty()) banner += " (client " + request.text + ")";
      return SessionResponse::success(
          request.req_id, std::move(banner),
          static_cast<std::int64_t>(client.id));
    }
    case SessionOp::kBreak: {
      auto spec = parse_breakpoint(request.text);
      if (!spec.ok()) {
        return SessionResponse::failure(request.req_id, spec.error());
      }
      auto bp = session.arm_breakpoint(spec.value(), timeout);
      if (!bp.ok()) {
        return SessionResponse::failure(request.req_id, bp.error());
      }
      return SessionResponse::success(
          request.req_id,
          "breakpoint " + std::to_string(bp.value().value()) +
              " set: " + spec.value().describe(),
          static_cast<std::int64_t>(bp.value().value()));
    }
    case SessionOp::kClear: {
      if (request.number <= 0 ||
          request.number >
              static_cast<std::int64_t>(
                  std::numeric_limits<BreakpointId::rep_type>::max())) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kInvalidArgument,
                  "clear needs a valid breakpoint id"));
      }
      session.clear_breakpoint(
          BreakpointId(static_cast<BreakpointId::rep_type>(request.number)));
      return SessionResponse::success(
          request.req_id,
          "breakpoint " + std::to_string(request.number) + " cleared",
          request.number);
    }
    case SessionOp::kHalt: {
      // Hold the wave lock across initiate + wait so no other session can
      // resume (or start a competing wave) while the markers propagate.
      std::lock_guard<std::mutex> wave_guard{wave_mutex_};
      session.halt();
      auto wave = session.wait_for_halt(timeout);
      if (!wave.has_value()) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kTimeout,
                  "halt wave did not complete within " +
                      std::to_string(timeout.ns / 1'000'000) + "ms"));
      }
      client.halt_wave = wave->id;
      {
        std::lock_guard<std::mutex> guard{mutex_};
        if (halt_owner_ == 0) halt_owner_ = client.id;
      }
      return SessionResponse::success(
          request.req_id, describe_wave(*wave, "halted:"),
          static_cast<std::int64_t>(wave->id));
    }
    case SessionOp::kState: {
      auto wave = session_halt_wave(client);
      if (!wave.has_value() || !wave->complete) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kFailedPrecondition,
                  "no completed halt wave; run `halt` first"));
      }
      return SessionResponse::success(
          request.req_id,
          describe_wave(*wave, "S_h of") + "\n" + wave->state.describe(),
          static_cast<std::int64_t>(wave->id),
          wave->state.encode_snapshots());
    }
    case SessionOp::kSnapshot: {
      std::lock_guard<std::mutex> wave_guard{wave_mutex_};
      auto wave = session.take_snapshot(timeout);
      if (!wave.has_value()) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kTimeout,
                  "snapshot wave did not complete within " +
                      std::to_string(timeout.ns / 1'000'000) + "ms"));
      }
      return SessionResponse::success(
          request.req_id,
          describe_wave(*wave, "S_r of") + "\n" + wave->state.describe(),
          static_cast<std::int64_t>(wave->id),
          wave->state.encode_snapshots());
    }
    case SessionOp::kInspect: {
      if (request.number < 0 ||
          (config_.num_user_processes != 0 &&
           request.number >=
               static_cast<std::int64_t>(config_.num_user_processes))) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kInvalidArgument,
                  "process p" + std::to_string(request.number) +
                      " is outside the topology"));
      }
      const ProcessId target(static_cast<std::uint32_t>(request.number));
      auto snapshot = session.inspect(target, timeout);
      if (!snapshot.has_value()) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kTimeout,
                  process_name(target) + " did not report state within " +
                      std::to_string(timeout.ns / 1'000'000) + "ms"));
      }
      ByteWriter writer;
      snapshot->encode(writer);
      return SessionResponse::success(
          request.req_id, process_name(target) + ": " + snapshot->description,
          request.number, std::move(writer).take());
    }
    case SessionOp::kDeadlock: {
      auto wave = session_halt_wave(client);
      if (!wave.has_value() || !wave->complete) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kFailedPrecondition,
                  "no completed halt wave; run `halt` first"));
      }
      auto report = find_deadlock(wave->state);
      if (!report.ok()) {
        // The analysis ran and concluded it cannot apply to this
        // workload's state encoding — that is an answer, not a protocol
        // failure.
        return SessionResponse::success(
            request.req_id,
            "deadlock analysis inapplicable: " + report.error().message(),
            -1);
      }
      const DeadlockReport& r = report.value();
      std::string text;
      if (r.deadlocked) {
        text = "DEADLOCK: cycle";
        for (const ProcessId p : r.cycle) {
          text += " -> " + process_name(p);
        }
      } else {
        text = "no deadlock: " + std::to_string(r.blocked_processes) +
               " blocked, " + std::to_string(r.rescued_by_channel_state) +
               " rescued by in-flight channel state";
      }
      return SessionResponse::success(request.req_id, std::move(text),
                                      r.deadlocked ? 1 : 0);
    }
    case SessionOp::kHits: {
      const auto hits = session.hits();
      std::string text;
      for (const auto& hit : hits) {
        if (!text.empty()) text += '\n';
        text += "bp " + std::to_string(hit.breakpoint.value()) + " at " +
                process_name(hit.process) + ": " + hit.description;
      }
      if (text.empty()) text = "no breakpoint hits";
      return SessionResponse::success(
          request.req_id, std::move(text),
          static_cast<std::int64_t>(hits.size()));
    }
    case SessionOp::kMetrics: {
      std::function<std::string()> source;
      {
        std::lock_guard<std::mutex> guard{mutex_};
        source = metrics_json_;
      }
      if (!source) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kFailedPrecondition,
                  "target exposes no metrics source"));
      }
      return SessionResponse::success(request.req_id, source());
    }
    case SessionOp::kResume: {
      std::lock_guard<std::mutex> wave_guard{wave_mutex_};
      session.resume(timeout);
      {
        std::lock_guard<std::mutex> guard{mutex_};
        halt_owner_ = 0;
      }
      return SessionResponse::success(request.req_id, "resumed");
    }
    case SessionOp::kReplay: {
      std::function<Result<std::string>(const std::string&)> handler;
      {
        std::lock_guard<std::mutex> guard{mutex_};
        handler = replay_handler_;
      }
      if (!handler) {
        return SessionResponse::failure(
            request.req_id,
            Error(ErrorCode::kFailedPrecondition,
                  "target was not started with recording "
                  "(ddbg_target --record <dir>)"));
      }
      // Replays run a private simulation; they never touch the live
      // target's waves, so no wave_mutex_ here.
      auto report = handler(request.text);
      if (!report.ok()) {
        return SessionResponse::failure(request.req_id, report.error());
      }
      return SessionResponse::success(request.req_id,
                                      std::move(report).value());
    }
    case SessionOp::kQuit:
      return SessionResponse::success(request.req_id, "bye");
  }
  return SessionResponse::failure(
      request.req_id, Error(ErrorCode::kInvalidArgument, "unknown op"));
}

}  // namespace ddbg
