#include "debugger/port_file.hpp"

#include <signal.h>
#include <stdio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace ddbg {

namespace {

// Strict decimal parse; returns -1 on anything but digits.
std::int64_t parse_decimal(const std::string& text) {
  if (text.empty() || text.size() > 18) return -1;
  std::int64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string trimmed(std::string line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                           line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
  std::size_t begin = 0;
  while (begin < line.size() &&
         (line[begin] == ' ' || line[begin] == '\t')) {
    ++begin;
  }
  return line.substr(begin);
}

}  // namespace

Status write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Error(ErrorCode::kInternal,
                   "cannot write port file " + tmp);
    }
    out << "DDBG_CONTROL_PORT=" << port << "\n"
        << "DDBG_SERVER_PID=" << static_cast<std::int64_t>(::getpid())
        << "\n";
    out.flush();
    if (!out) {
      return Error(ErrorCode::kInternal,
                   "short write to port file " + tmp);
    }
  }
  // rename(2) is atomic within a filesystem: a concurrent reader sees
  // either the old complete file or the new complete file, never a torn
  // prefix.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::remove(tmp.c_str());
    return Error(ErrorCode::kInternal,
                 "rename " + tmp + " -> " + path + ": " +
                     std::string(::strerror(err)));
  }
  return Status::ok_status();
}

bool process_alive(std::int64_t pid) {
  if (pid <= 0) return true;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM means the process exists but belongs to someone else; only
  // ESRCH proves it is gone.
  return errno != ESRCH;
}

Result<PortFileEntry> read_port_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kNotFound, "no port file at " + path);
  }
  PortFileEntry entry;
  bool saw_port = false;
  std::string line;
  while (std::getline(in, line)) {
    line = trimmed(line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // Legacy format: a single bare port number, no PID.
      const std::int64_t port = parse_decimal(line);
      if (port <= 0 || port > 65535) {
        return Error(ErrorCode::kParseError,
                     "malformed port file line: " + line);
      }
      entry.port = static_cast<std::uint16_t>(port);
      saw_port = true;
      continue;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = trimmed(line.substr(eq + 1));
    if (key == "DDBG_CONTROL_PORT") {
      const std::int64_t port = parse_decimal(value);
      if (port <= 0 || port > 65535) {
        return Error(ErrorCode::kParseError,
                     "malformed port in port file: " + value);
      }
      entry.port = static_cast<std::uint16_t>(port);
      saw_port = true;
    } else if (key == "DDBG_SERVER_PID") {
      const std::int64_t pid = parse_decimal(value);
      if (pid <= 0) {
        return Error(ErrorCode::kParseError,
                     "malformed pid in port file: " + value);
      }
      entry.pid = pid;
    }
    // Unknown keys are ignored: the format may grow.
  }
  if (!saw_port) {
    return Error(ErrorCode::kNotFound,
                 "port file " + path + " has no port yet");
  }
  if (entry.pid != 0 && !process_alive(entry.pid)) {
    return Error(ErrorCode::kFailedPrecondition,
                 "stale port file " + path + ": server pid " +
                     std::to_string(entry.pid) + " is gone");
  }
  return entry;
}

}  // namespace ddbg
