// Control-port files: how a ddbg_target publishes its session listener to
// ddbg clients on the same host.
//
// The old scheme — write the bare port number, client polls until the file
// is non-empty — had a stale-port race: a port file left behind by a dead
// target (crashed before cleanup, or the client started after the target
// exited) made the client dial a port that may now belong to an unrelated
// process.  Two fixes, both here:
//
//   * writes are atomic: the file is written to "<path>.tmp" and
//     rename(2)d into place, so a polling reader never observes a torn
//     half-written entry;
//   * the file carries the server's PID next to the port, and the reader
//     rejects entries whose PID is no longer alive (kill(pid, 0) ==
//     ESRCH), so a stale file reads as "not ready", never as a port.
//
// Format (one key per line, shell-sourceable):
//
//   DDBG_CONTROL_PORT=41233
//   DDBG_SERVER_PID=7421
//
// Bare-port files written by older targets (a single "41233" line) are
// still accepted — they carry no PID, so no liveness check applies.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace ddbg {

struct PortFileEntry {
  std::uint16_t port = 0;
  // 0 = the file did not name a server PID (legacy bare-port format).
  std::int64_t pid = 0;
};

// Atomically publish `port` (and this process's PID) at `path`.
[[nodiscard]] Status write_port_file(const std::string& path,
                                     std::uint16_t port);

// Parse `path`.  Errors: kNotFound (missing/empty — poll again),
// kParseError (malformed), kFailedPrecondition (the named server PID is dead —
// the entry is stale and must not be dialed).
[[nodiscard]] Result<PortFileEntry> read_port_file(const std::string& path);

// Liveness probe used by read_port_file; exposed for tests.  pid <= 0 is
// treated as alive (nothing to check).
[[nodiscard]] bool process_alive(std::int64_t pid);

}  // namespace ddbg
