// Wire protocol between ddbg clients and the control-socket session
// server (session_server.hpp).
//
// Transport: the same length-prefixed frames as the runtime's data plane
// (net/framing.hpp) over a dedicated control TCP connection — one frame
// per request, one frame per response, strictly request/response in
// order.  Bodies are encoded with ByteWriter/ByteReader, and structured
// payloads (process snapshots in state/inspect responses) reuse the exact
// ProcessSnapshot wire encoding the Command convergecast path uses, so a
// programmatic client decodes the same bytes the aggregator tier ships.
//
//   request  := req_id:u64  op:u8  text:str  number:i64
//   response := req_id:u64  status:u8  text:str  number:i64  payload:bytes
//
// `status` is 0 for success, otherwise 1 + ErrorCode (common/result.hpp).
// `text` is the human-readable rendering the CLI prints verbatim; `number`
// and `payload` carry op-specific machine-readable results (see SessionOp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/result.hpp"
#include "common/serialization.hpp"

namespace ddbg {

enum class SessionOp : std::uint8_t {
  kHello = 0,     // text: client name   -> text: banner, number: session id
  kBreak = 1,     // text: expression    -> number: breakpoint id
  kClear = 2,     // number: breakpoint  -> (ack)
  kHalt = 3,      //                     -> number: wave id
  kState = 4,     //                     -> payload: snapshots of latest S_h
  kSnapshot = 5,  //                     -> payload: snapshots of latest S_r
  kInspect = 6,   // number: process id  -> payload: one ProcessSnapshot
  kDeadlock = 7,  //                     -> number: 1 if deadlocked else 0
  kHits = 8,      //                     -> number: breakpoint hit count
  kMetrics = 9,   //                     -> text: ddbg.metrics.v1 JSON
  kResume = 10,   //                     -> (ack)
  kQuit = 11,     //                     -> (ack; server closes the session)
  kReplay = 12,   // text: replay command ("load <path>" | "run" | "back" |
                  // "cut <k>" | "status") -> text: report (src/replay)
};

inline constexpr std::uint8_t kMaxSessionOp =
    static_cast<std::uint8_t>(SessionOp::kReplay);

struct SessionRequest {
  std::uint64_t req_id = 0;
  SessionOp op = SessionOp::kHello;
  std::string text;
  std::int64_t number = 0;

  void encode(ByteWriter& writer) const {
    writer.u64(req_id);
    writer.u8(static_cast<std::uint8_t>(op));
    writer.str(text);
    writer.i64(number);
  }

  [[nodiscard]] static Result<SessionRequest> decode(
      std::span<const std::uint8_t> body) {
    ByteReader reader(body);
    SessionRequest req;
    auto id = reader.u64();
    if (!id.ok()) return id.error();
    req.req_id = id.value();
    auto op = reader.u8();
    if (!op.ok()) return op.error();
    if (op.value() > kMaxSessionOp) {
      return Error(ErrorCode::kParseError,
                   "unknown session op " + std::to_string(op.value()));
    }
    req.op = static_cast<SessionOp>(op.value());
    auto text = reader.str();
    if (!text.ok()) return text.error();
    req.text = std::move(text).value();
    auto number = reader.i64();
    if (!number.ok()) return number.error();
    req.number = number.value();
    return req;
  }
};

struct SessionResponse {
  std::uint64_t req_id = 0;
  std::uint8_t status = 0;  // 0 = ok, else 1 + ErrorCode
  std::string text;
  std::int64_t number = 0;
  Bytes payload;

  [[nodiscard]] bool ok() const { return status == 0; }
  [[nodiscard]] std::optional<ErrorCode> error_code() const {
    if (status == 0) return std::nullopt;
    return static_cast<ErrorCode>(status - 1);
  }

  [[nodiscard]] static SessionResponse success(std::uint64_t req_id,
                                               std::string text,
                                               std::int64_t number = 0,
                                               Bytes payload = {}) {
    SessionResponse resp;
    resp.req_id = req_id;
    resp.text = std::move(text);
    resp.number = number;
    resp.payload = std::move(payload);
    return resp;
  }

  [[nodiscard]] static SessionResponse failure(std::uint64_t req_id,
                                               const Error& error) {
    SessionResponse resp;
    resp.req_id = req_id;
    resp.status = static_cast<std::uint8_t>(error.code()) + 1;
    resp.text = error.message();
    return resp;
  }

  void encode(ByteWriter& writer) const {
    writer.u64(req_id);
    writer.u8(status);
    writer.str(text);
    writer.i64(number);
    writer.bytes(payload);
  }

  [[nodiscard]] static Result<SessionResponse> decode(
      std::span<const std::uint8_t> body) {
    ByteReader reader(body);
    SessionResponse resp;
    auto id = reader.u64();
    if (!id.ok()) return id.error();
    resp.req_id = id.value();
    auto status = reader.u8();
    if (!status.ok()) return status.error();
    resp.status = status.value();
    auto text = reader.str();
    if (!text.ok()) return text.error();
    resp.text = std::move(text).value();
    auto number = reader.i64();
    if (!number.ok()) return number.error();
    resp.number = number.value();
    auto payload = reader.bytes();
    if (!payload.ok()) return payload.error();
    resp.payload = std::move(payload).value();
    return resp;
  }
};

}  // namespace ddbg
