// SessionClient: blocking client side of the control-socket protocol
// (session_protocol.hpp).  Used by the ddbg CLI and by tests; one
// connection, strict request/response, synchronous.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "common/time.hpp"
#include "debugger/session_protocol.hpp"
#include "net/framing.hpp"

namespace ddbg {

class SessionClient {
 public:
  SessionClient() = default;
  ~SessionClient();

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  // Connect to the target's control listener on loopback.
  [[nodiscard]] Status connect(std::uint16_t port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  // Send one request and block for its response.  `timeout` bounds the
  // wait for the response frame (SO_RCVTIMEO); an error Result means the
  // transport failed — a protocol-level failure comes back as a
  // SessionResponse with a nonzero status.
  [[nodiscard]] Result<SessionResponse> call(
      SessionOp op, std::string text = {}, std::int64_t number = 0,
      Duration timeout = Duration::seconds(10));

 private:
  int fd_ = -1;
  std::uint64_t next_req_id_ = 1;
  FrameParser parser_;
};

}  // namespace ddbg
