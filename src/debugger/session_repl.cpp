#include "debugger/session_repl.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <limits>
#include <ostream>

namespace ddbg {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Split "word rest..." at the first run of whitespace.
std::pair<std::string_view, std::string_view> split_word(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return {s.substr(0, i), trim(s.substr(i))};
}

Result<std::int64_t> parse_number(std::string_view word,
                                  const char* what) {
  std::string_view digits = word;
  if (!digits.empty() && (digits.front() == 'p' || digits.front() == 'P')) {
    digits.remove_prefix(1);  // accept "p3" for process operands
  }
  if (digits.empty()) {
    return Error(ErrorCode::kParseError,
                 std::string(what) + " expects a number");
  }
  std::int64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return Error(ErrorCode::kParseError,
                   std::string(what) + ": '" + std::string(word) +
                       "' is not a number");
    }
    const std::int64_t digit = c - '0';
    if (value > (std::numeric_limits<std::int64_t>::max() - digit) / 10) {
      return Error(ErrorCode::kParseError,
                   std::string(what) + ": number out of range");
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

std::string repl_help() {
  return
      "commands:\n"
      "  break <expr>     arm a breakpoint (e.g. p0:event(token) -> p2:recv)\n"
      "  clear <id>       remove breakpoint <id>\n"
      "  halt             halt the computation, wait for a complete S_h\n"
      "  state            print the latest complete halt state\n"
      "  snapshot         take a Chandy-Lamport recording (monitor-only)\n"
      "  inspect <pid>    query one process's state (\"p3\" or \"3\")\n"
      "  deadlock         analyze the latest halt state for deadlock\n"
      "  hits             list recorded breakpoint hits\n"
      "  metrics          dump the target's metrics JSON\n"
      "  resume           resume the halted computation\n"
      "  replay <cmd>     record/replay time travel: `replay load <path>`,\n"
      "                   `replay run`, `replay back`, `replay cut <k>`,\n"
      "                   `replay status` (target must record: --record)\n"
      "  quit             end the session\n"
      "  expect <substr>  (batch) assert the last response contains <substr>\n"
      "  help             this list";
}

Result<ReplLine> parse_repl_line(std::string_view raw) {
  const std::string_view line = trim(raw);
  ReplLine out;
  if (line.empty() || line.front() == '#') return out;  // kEmpty

  const auto [word, rest] = split_word(line);
  if (word == "help") {
    out.kind = ReplLine::Kind::kHelp;
    return out;
  }
  if (word == "expect") {
    if (rest.empty()) {
      return Error(ErrorCode::kParseError, "expect needs a substring");
    }
    out.kind = ReplLine::Kind::kExpect;
    out.text = std::string(rest);
    return out;
  }

  out.kind = ReplLine::Kind::kCommand;
  if (word == "break") {
    if (rest.empty()) {
      return Error(ErrorCode::kParseError, "break needs an expression");
    }
    out.op = SessionOp::kBreak;
    out.text = std::string(rest);
    return out;
  }
  if (word == "clear") {
    auto id = parse_number(rest, "clear");
    if (!id.ok()) return id.error();
    out.op = SessionOp::kClear;
    out.number = id.value();
    return out;
  }
  if (word == "inspect") {
    auto pid = parse_number(rest, "inspect");
    if (!pid.ok()) return pid.error();
    out.op = SessionOp::kInspect;
    out.number = pid.value();
    return out;
  }
  if (word == "replay") {
    if (rest.empty()) {
      return Error(ErrorCode::kParseError,
                   "replay needs a subcommand (load|run|back|cut|status)");
    }
    out.op = SessionOp::kReplay;
    out.text = std::string(rest);
    return out;
  }

  struct Bare {
    std::string_view name;
    SessionOp op;
  };
  static constexpr Bare kBare[] = {
      {"halt", SessionOp::kHalt},         {"state", SessionOp::kState},
      {"snapshot", SessionOp::kSnapshot}, {"deadlock", SessionOp::kDeadlock},
      {"hits", SessionOp::kHits},         {"metrics", SessionOp::kMetrics},
      {"resume", SessionOp::kResume},     {"quit", SessionOp::kQuit},
  };
  for (const Bare& bare : kBare) {
    if (word == bare.name) {
      if (!rest.empty()) {
        return Error(ErrorCode::kParseError,
                     std::string(bare.name) + " takes no operand");
      }
      out.op = bare.op;
      return out;
    }
  }
  return Error(ErrorCode::kParseError,
               "unknown command '" + std::string(word) + "' (try `help`)");
}

int run_repl(SessionClient& client, std::istream& in, std::ostream& out,
             const ReplConfig& config) {
  const auto record = [&config](const std::string& text) {
    if (config.transcript != nullptr) config.transcript->push_back(text);
  };

  auto hello = client.call(SessionOp::kHello);
  if (!hello.ok()) {
    out << "error: " << hello.error().message() << "\n";
    return hello.error().code() == ErrorCode::kTimeout ? kReplExitTimeout
                                                       : kReplExitCommand;
  }
  out << hello.value().text << "\n";
  record(hello.value().text);

  std::string last_response;
  std::string line;
  while (true) {
    if (config.interactive) out << config.prompt << std::flush;
    if (!std::getline(in, line)) break;  // EOF ends the session cleanly

    auto parsed = parse_repl_line(line);
    if (!parsed.ok()) {
      out << "error: " << parsed.error().message() << "\n";
      if (!config.interactive) return kReplExitCommand;
      continue;
    }
    const ReplLine& cmd = parsed.value();
    switch (cmd.kind) {
      case ReplLine::Kind::kEmpty:
        continue;
      case ReplLine::Kind::kHelp:
        out << repl_help() << "\n";
        continue;
      case ReplLine::Kind::kExpect:
        if (last_response.find(cmd.text) == std::string::npos) {
          out << "expect FAILED: '" << cmd.text
              << "' not in last response\n";
          if (!config.interactive) return kReplExitAssert;
        } else {
          out << "expect ok: '" << cmd.text << "'\n";
        }
        continue;
      case ReplLine::Kind::kCommand:
        break;
    }

    if (!config.interactive) out << config.prompt << trim(line) << "\n";
    auto response = client.call(cmd.op, cmd.text, cmd.number);
    if (!response.ok()) {
      out << "error: " << response.error().message() << "\n";
      if (!config.interactive) {
        return response.error().code() == ErrorCode::kTimeout
                   ? kReplExitTimeout
                   : kReplExitCommand;
      }
      if (response.error().code() == ErrorCode::kShutdown) {
        return kReplExitCommand;
      }
      continue;
    }
    const SessionResponse& resp = response.value();
    last_response = resp.text;
    record(resp.text);
    if (resp.ok()) {
      out << resp.text << "\n";
    } else {
      out << "error: " << resp.text << "\n";
      if (!config.interactive) return kReplExitCommand;
    }
    if (cmd.op == SessionOp::kQuit) return kReplExitOk;
  }
  return kReplExitOk;
}

}  // namespace ddbg
