// Strong identifier types used throughout the library.
//
// The paper's model (Miller & Choi, ICDCS'88, section 2.1) is a finite set of
// processes connected by unidirectional FIFO channels.  We give both of
// those, plus the bookkeeping identifiers the algorithms need (halt waves,
// breakpoints, timers), distinct C++ types so they cannot be mixed up.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace ddbg {

// CRTP base for integer-backed strong id types.  Provides comparison,
// hashing and printing; derived types add nothing but their identity.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();

 private:
  Rep value_ = kInvalid;
};

// A user process of the distributed program.  The debugger process (the `d`
// of section 2.2.3) also carries a ProcessId, conventionally the largest one
// in the system; see net/topology.hpp.
struct ProcessIdTag {};
using ProcessId = StrongId<ProcessIdTag>;

// A unidirectional channel.  ChannelIds index into Topology's channel table,
// which stores the (source, destination) pair for each channel.
struct ChannelIdTag {};
using ChannelId = StrongId<ChannelIdTag>;

// Identifier of one halting wave.  The paper calls this `halt_id`: each halt
// marker carries one, and every process tracks the largest it has seen as
// `last_halt_id` so stale markers from previous waves can be ignored.
struct HaltIdTag {};
using HaltId = StrongId<HaltIdTag, std::uint64_t>;

// Identifier of a breakpoint registered with the debugger.
struct BreakpointIdTag {};
using BreakpointId = StrongId<BreakpointIdTag>;

// Identifier of a timer registered by a process with its runtime.
struct TimerIdTag {};
using TimerId = StrongId<TimerIdTag>;

template <typename Tag, typename Rep>
[[nodiscard]] inline std::string to_string(StrongId<Tag, Rep> id) {
  if (!id.valid()) return "<invalid>";
  return std::to_string(id.value());
}

// Prefixed ids are built with reserve + append (not operator+ on a string
// literal): GCC 12's inliner turns the temporary-concatenation form into a
// spurious -Wrestrict warning at higher optimization levels.
[[nodiscard]] inline std::string prefixed_id(char prefix, std::uint32_t value) {
  std::string out;
  out.reserve(12);  // 'p' + up to 10 digits
  out.push_back(prefix);
  out.append(std::to_string(value));
  return out;
}

[[nodiscard]] inline std::string to_string(ProcessId id) {
  if (!id.valid()) return "p<invalid>";
  return prefixed_id('p', id.value());
}

[[nodiscard]] inline std::string to_string(ChannelId id) {
  if (!id.valid()) return "c<invalid>";
  return prefixed_id('c', id.value());
}

}  // namespace ddbg

namespace std {
template <typename Tag, typename Rep>
struct hash<ddbg::StrongId<Tag, Rep>> {
  size_t operator()(ddbg::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
