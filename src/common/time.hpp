// Virtual time used by the simulator and (as a wall-clock shadow) by the
// threaded runtime.  Kept as explicit nanosecond counts rather than
// std::chrono to make simulator arithmetic and serialization trivial.
#pragma once

#include <cstdint>
#include <string>

namespace ddbg {

// A duration in nanoseconds.
struct Duration {
  std::int64_t ns = 0;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) {
    return Duration{n};
  }
  [[nodiscard]] static constexpr Duration micros(std::int64_t n) {
    return Duration{n * 1'000};
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t n) {
    return Duration{n * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t n) {
    return Duration{n * 1'000'000'000};
  }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns + b.ns};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns - b.ns};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns * k};
  }

  [[nodiscard]] double to_micros() const {
    return static_cast<double>(ns) / 1e3;
  }
  [[nodiscard]] double to_millis() const {
    return static_cast<double>(ns) / 1e6;
  }
};

// A point on the (virtual) time axis, nanoseconds since the start of the run.
struct TimePoint {
  std::int64_t ns = 0;

  friend constexpr bool operator==(TimePoint, TimePoint) = default;
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns + d.ns};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.ns - b.ns};
  }
};

[[nodiscard]] inline std::string to_string(Duration d) {
  return std::to_string(d.ns) + "ns";
}
[[nodiscard]] inline std::string to_string(TimePoint t) {
  return "t+" + std::to_string(t.ns) + "ns";
}

}  // namespace ddbg
