// Minimal Result<T> / Status types for recoverable errors.
//
// Programmer errors (violated preconditions) are handled with DDBG_ASSERT;
// protocol-level and user-input errors (e.g. an unparsable breakpoint
// expression, a command for an unknown process) travel through Result<T> so
// callers must confront them.  C++20 has no std::expected, so this is a
// small hand-rolled equivalent that covers what the library needs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ddbg {

enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kParseError,
  kTimeout,
  kShutdown,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    return std::string(ddbg::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from both value and error keeps call sites terse.
  Result(T value) : state_(std::move(value)) {}          // NOLINT
  Result(Error error) : state_(std::move(error)) {}      // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) {
      std::fprintf(stderr, "Result::error() called on ok Result\n");
      std::abort();
    }
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void check_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Error>(state_).to_string().c_str());
      std::abort();
    }
  }

  std::variant<T, Error> state_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) {
      std::fprintf(stderr, "Status::error() called on ok Status\n");
      std::abort();
    }
    return *error_;
  }

  static Status ok_status() { return Status(); }

 private:
  std::optional<Error> error_;
};

}  // namespace ddbg

// Precondition/internal-invariant check that is active in all build types:
// the algorithms here are the product, so their invariants stay on.
#define DDBG_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DDBG_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, msg);                                         \
      std::abort();                                                        \
    }                                                                      \
  } while (false)
