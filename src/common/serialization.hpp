// Byte-oriented serialization for messages and debugger commands.
//
// The wire format is simple and explicit: little-endian fixed-width
// integers, LEB128 varints for counts, length-prefixed strings.  Every
// payload that crosses a channel in this library is encoded through
// ByteWriter and decoded through ByteReader, which does strict bounds
// checking and reports malformed input through Result rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ddbg {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  // Encode into an existing buffer, appending after its current contents
  // (e.g. a pooled frame that already holds a length-prefix placeholder).
  // The writer must not outlive `external`; take() is owning-mode only.
  explicit ByteWriter(Bytes& external) : out_(&external) {}

  void u8(std::uint8_t v) { buf().push_back(v); }

  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  // Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf().push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf().push_back(static_cast<std::uint8_t>(v));
  }

  void str(std::string_view s) {
    varint(s.size());
    buf().insert(buf().end(), s.begin(), s.end());
  }

  void bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    buf().insert(buf().end(), data.begin(), data.end());
  }

  [[nodiscard]] Bytes take() && { return std::move(own_); }
  [[nodiscard]] const Bytes& buffer() const {
    return out_ != nullptr ? *out_ : own_;
  }
  // In external mode this includes whatever the buffer held before the
  // writer was attached.
  [[nodiscard]] std::size_t size() const { return buffer().size(); }

 private:
  [[nodiscard]] Bytes& buf() { return out_ != nullptr ? *out_ : own_; }

  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf().push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes own_;
  Bytes* out_ = nullptr;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8() {
    if (pos_ + 1 > data_.size()) return underflow("u8");
    return data_[pos_++];
  }

  [[nodiscard]] Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }

  [[nodiscard]] Result<std::int64_t> i64() {
    auto r = u64();
    if (!r.ok()) return r.error();
    return static_cast<std::int64_t>(r.value());
  }

  [[nodiscard]] Result<double> f64() {
    auto r = u64();
    if (!r.ok()) return r.error();
    double v;
    std::uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] Result<std::uint64_t> varint() {
    std::uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return underflow("varint");
      if (shift >= 64) {
        return Error(ErrorCode::kParseError, "varint too long");
      }
      const std::uint8_t byte = data_[pos_++];
      if (shift == 63 && (byte & 0x7e) != 0) {
        // Tenth byte: only its low bit lands inside a u64.  Shifting the
        // rest away would silently accept a value that doesn't round-trip.
        return Error(ErrorCode::kParseError, "varint overflows 64 bits");
      }
      result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
      shift += 7;
    }
  }

  [[nodiscard]] Result<std::string> str() {
    auto len = varint();
    if (!len.ok()) return len.error();
    // Compare against remaining(): `pos_ + len` wraps for lengths near
    // UINT64_MAX and would pass the check.
    if (len.value() > remaining()) return underflow("str");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    len.value());
    pos_ += len.value();
    return out;
  }

  [[nodiscard]] Result<Bytes> bytes() {
    auto len = varint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return underflow("bytes");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
    pos_ += len.value();
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // Read an element count and validate it against the remaining buffer
  // (every element occupies at least one byte), so malicious counts cannot
  // drive huge allocations before the per-element reads fail.
  [[nodiscard]] Result<std::uint64_t> count() {
    auto n = varint();
    if (!n.ok()) return n.error();
    if (n.value() > remaining()) {
      return Error(ErrorCode::kParseError, "count exceeds buffer");
    }
    return n;
  }

 private:
  template <typename T>
  Result<T> read_le() {
    if (sizeof(T) > remaining()) return underflow("fixed int");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  Error underflow(const char* what) const {
    return Error(ErrorCode::kParseError,
                 std::string("buffer underflow reading ") + what);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ddbg
