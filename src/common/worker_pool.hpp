// A small fork-join worker pool for the parallel simulation engine.
//
// The pool owns `size()` long-lived threads.  run() hands every worker the
// same callable (invoked with the worker index) and blocks until all of
// them return — one barrier per call, which is exactly the shape of the
// simulator's conservative time windows: fan the window's event shards out
// to the workers, join, merge.  Affinity is by index: worker i always runs
// task i, so per-worker state (event shards, staging lanes) needs no
// locking — each lane is touched by one thread during the parallel section
// and by the coordinating thread only between run() calls.
//
// Exceptions thrown by a task are captured and rethrown from run() on the
// caller's thread (first one wins), so a failing DDBG_ASSERT inside a
// worker surfaces like a sequential failure.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ddbg {

class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> guard{mutex_};
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  // Run task(i) on worker i for every i in [0, size()); returns when all
  // have finished.  Must not be called re-entrantly.
  void run(const std::function<void(std::size_t)>& task) {
    if (threads_.empty()) return;
    {
      std::lock_guard<std::mutex> guard{mutex_};
      task_ = &task;
      ++generation_;
      remaining_ = threads_.size();
    }
    cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock{mutex_};
      done_cv_.wait(lock, [this] { return remaining_ == 0; });
      task_ = nullptr;
      if (error_) {
        std::exception_ptr error = std::exchange(error_, nullptr);
        std::rethrow_exception(error);
      }
    }
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock{mutex_};
        cv_.wait(lock, [&] {
          return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
        task = task_;
      }
      try {
        (*task)(index);
      } catch (...) {
        std::lock_guard<std::mutex> guard{mutex_};
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> guard{mutex_};
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stopping_ = false;
  std::exception_ptr error_;
};

}  // namespace ddbg
