// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator, the workloads and the benches
// flows through Rng so that every experiment is reproducible from a seed.
// The core generator is xoshiro256**, seeded via SplitMix64 (the standard
// recommendation from the xoshiro authors).
#pragma once

#include <cstdint>
#include <cmath>

#include "common/result.hpp"

namespace ddbg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over all 64-bit values.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    DDBG_ASSERT(bound > 0, "Rng::next_below bound must be positive");
    // Debiased multiply-shift (Lemire); the retry loop terminates with
    // overwhelming probability after one or two iterations.
    while (true) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * bound;
      const auto low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.  lo == hi is a valid
  // zero-width range (always returns lo).
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    DDBG_ASSERT(lo <= hi, "Rng::next_in requires lo <= hi");
    // Width must be computed in unsigned arithmetic: `hi - lo` as signed
    // overflows (UB) whenever the range is wider than int64, e.g.
    // next_in(INT64_MIN, INT64_MAX).
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 2^64 range: every u64 maps to a value.
    const std::uint64_t offset = span == 0 ? next_u64() : next_below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // True with the given probability.
  bool next_bool(double probability) { return next_double() < probability; }

  // Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) {
    DDBG_ASSERT(mean > 0.0, "Rng::next_exponential mean must be positive");
    double u = next_double();
    // Guard the log against u == 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Derive an independent child stream (for per-process/per-channel RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ddbg
