// A free list of Bytes buffers with capacity retention, so hot paths that
// encode a message per send stop paying a heap allocation per message:
// after warmup every acquire() hands back a buffer whose capacity already
// fits a typical frame.
//
// NOT thread-safe by design.  Each runtime worker owns its own pool and
// only that worker's thread touches it, so the free list needs no lock —
// a shared pool would reintroduce the per-send lock this exists to remove.
//
// Buffers travel inside a move-only Lease (RAII): dropping the lease
// returns the buffer to the pool, take() detaches it for call sites that
// must keep the bytes alive past the lease.  Oversized buffers (a giant
// one-off payload) are not retained, so a single outlier cannot pin its
// capacity in the pool forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/serialization.hpp"

namespace ddbg {

class BufferPool {
 public:
  struct Config {
    // Free-list depth: more than the deepest burst a single handler emits.
    std::size_t max_buffers = 32;
    // Buffers that grew past this are freed instead of retained.
    std::size_t max_retained_capacity = 1u << 20;  // 1 MiB
  };

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          buffer_(std::move(other.buffer_)),
          reused_(other.reused_) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        buffer_ = std::move(other.buffer_);
        reused_ = other.reused_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Bytes& bytes() { return buffer_; }
    [[nodiscard]] const Bytes& bytes() const { return buffer_; }
    // Whether acquire() was served from the free list (pool hit).
    [[nodiscard]] bool reused() const { return reused_; }

    // Detach the buffer; it will not return to the pool.
    [[nodiscard]] Bytes take() && {
      pool_ = nullptr;
      return std::move(buffer_);
    }

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, Bytes buffer, bool reused)
        : pool_(pool), buffer_(std::move(buffer)), reused_(reused) {}

    void release() {
      if (pool_ != nullptr) pool_->recycle(std::move(buffer_));
      pool_ = nullptr;
    }

    BufferPool* pool_ = nullptr;
    Bytes buffer_;
    bool reused_ = false;
  };

  BufferPool() = default;
  explicit BufferPool(Config config) : config_(config) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // An empty buffer, recycled (capacity retained, contents cleared) when
  // the free list has one, freshly allocated otherwise.
  [[nodiscard]] Lease acquire() {
    if (!free_.empty()) {
      Bytes buffer = std::move(free_.back());
      free_.pop_back();
      buffer.clear();
      ++hits_;
      return Lease(this, std::move(buffer), true);
    }
    ++misses_;
    return Lease(this, Bytes{}, false);
  }

  // Local accounting for unit tests and diagnostics; runtimes report pool
  // behavior through their MetricsRegistry (the common layer must not
  // depend on obs).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  void recycle(Bytes buffer) {
    if (free_.size() >= config_.max_buffers ||
        buffer.capacity() > config_.max_retained_capacity) {
      return;  // dropped: the vector frees itself
    }
    free_.push_back(std::move(buffer));
  }

  Config config_;
  std::vector<Bytes> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ddbg
