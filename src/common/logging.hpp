// Leveled logging with a swappable sink.
//
// The default sink writes to stderr; tests install a capturing sink.  The
// debug shim and the debugger process log at kDebug so an interactive
// session can be traced end to end when wanted, silently otherwise.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace ddbg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] constexpr const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

using LogSink = std::function<void(LogLevel, std::string_view)>;

// Process-wide logger configuration.  Thread-safe for concurrent log calls;
// set_sink/set_level are meant to be called during single-threaded setup.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void set_sink(LogSink sink);
  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  LogSink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ddbg

#define DDBG_LOG(lvl)                                         \
  if (static_cast<int>(lvl) <                                 \
      static_cast<int>(::ddbg::Logger::instance().level())) { \
  } else                                                      \
    ::ddbg::detail::LogLine(lvl)

#define DDBG_DEBUG() DDBG_LOG(::ddbg::LogLevel::kDebug)
#define DDBG_INFO() DDBG_LOG(::ddbg::LogLevel::kInfo)
#define DDBG_WARN() DDBG_LOG(::ddbg::LogLevel::kWarn)
#define DDBG_ERROR() DDBG_LOG(::ddbg::LogLevel::kError)
