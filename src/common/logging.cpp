#include "common/logging.hpp"

#include <cstdio>
#include <mutex>

namespace ddbg {

namespace {
std::mutex g_log_mutex;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::lock_guard<std::mutex> guard{g_log_mutex};
    std::fprintf(stderr, "[%s] %.*s\n", to_string(level),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::set_sink(LogSink sink) {
  std::lock_guard<std::mutex> guard{g_log_mutex};
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  LogSink sink;
  {
    std::lock_guard<std::mutex> guard{g_log_mutex};
    sink = sink_;
  }
  if (sink) sink(level, message);
}

}  // namespace ddbg
