// Channel latency models for the simulator.
//
// The paper's only timing assumption is that communication delays are
// unpredictable and non-zero.  These models let experiments sweep that
// unpredictability; per-channel FIFO order is enforced by the scheduler
// regardless of the sampled delays (the model requires in-order delivery).
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace ddbg {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  [[nodiscard]] virtual Duration sample(ChannelId channel, Rng& rng) = 0;

  // Lower bound on sample() across every channel: no draw may come back
  // smaller.  This is the parallel engine's lookahead — events inside a
  // conservative time window shorter than this bound cannot be affected by
  // messages sent inside the same window.  A model that cannot promise a
  // positive bound returns zero, which makes the simulator fall back to
  // sequential execution.
  [[nodiscard]] virtual Duration min_latency() const { return Duration{0}; }
};

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration delay) : delay_(delay) {}
  Duration sample(ChannelId, Rng&) override { return delay_; }
  [[nodiscard]] Duration min_latency() const override { return delay_; }

 private:
  Duration delay_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration low, Duration high) : low_(low), high_(high) {
    DDBG_ASSERT(low.ns >= 0 && low <= high, "invalid uniform latency bounds");
  }
  Duration sample(ChannelId, Rng& rng) override {
    return Duration{rng.next_in(low_.ns, high_.ns)};
  }
  [[nodiscard]] Duration min_latency() const override { return low_; }

 private:
  Duration low_;
  Duration high_;
};

// Exponential delays capture occasional stragglers; min_delay keeps every
// hop strictly positive.
class ExponentialLatency final : public LatencyModel {
 public:
  // The exponential tail is unbounded but the simulator's clock is int64
  // nanoseconds, and casting an out-of-range double to int64 is UB.  Any
  // sample beyond this cap is clamped: one virtual hour is ~9 orders of
  // magnitude above the means experiments use, so the clamp never distorts
  // real sweeps, it only keeps pathological tail draws defined.
  static constexpr Duration kMaxExtraDelay = Duration::seconds(3600);

  ExponentialLatency(Duration mean, Duration min_delay)
      : mean_(mean), min_(min_delay) {}
  Duration sample(ChannelId, Rng& rng) override {
    double extra = rng.next_exponential(static_cast<double>(mean_.ns));
    if (extra > static_cast<double>(kMaxExtraDelay.ns)) {
      extra = static_cast<double>(kMaxExtraDelay.ns);
    }
    return Duration{min_.ns + static_cast<std::int64_t>(extra)};
  }
  [[nodiscard]] Duration min_latency() const override { return min_; }

 private:
  Duration mean_;
  Duration min_;
};

[[nodiscard]] inline std::unique_ptr<LatencyModel> constant_latency(
    Duration delay) {
  return std::make_unique<ConstantLatency>(delay);
}
[[nodiscard]] inline std::unique_ptr<LatencyModel> uniform_latency(
    Duration low, Duration high) {
  return std::make_unique<UniformLatency>(low, high);
}
[[nodiscard]] inline std::unique_ptr<LatencyModel> exponential_latency(
    Duration mean, Duration min_delay) {
  return std::make_unique<ExponentialLatency>(mean, min_delay);
}

}  // namespace ddbg
