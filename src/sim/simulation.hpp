// Deterministic discrete-event simulation of a distributed program.
//
// Processes, channels and delays from the paper's model (section 2.1):
// reliable, in-order, unbounded channels with unpredictable per-message
// latency.  Everything is driven from a single event queue ordered by
// (virtual time, sequence number), so a run is a pure function of
// (topology, processes, latency model, seed) — which is what lets the
// equivalence experiment (E1) execute the *same* computation once under the
// C&L recorder and once under the Halting Algorithm and compare states.
//
// With config.workers > 1 the engine executes conservatively windowed
// parallel DES: processes are partitioned across a worker pool, each window
// spans less than the latency model's min_latency() (the lookahead — no
// message sent inside a window can be delivered inside it), workers dispatch
// their shard of the window's events while staging every externally ordered
// effect, and the coordinator commits the window by replaying the staged
// effects in exact (virtual_time, tie_seq) order.  Sequence numbers, message
// ids, metrics, observer callbacks and run_ordered notifications all come
// out byte-identical to the sequential engine — same seed, same trace, on
// any worker count.  See DESIGN.md "Parallel simulation".
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/worker_pool.hpp"
#include "net/fault_plan.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"
#include "sim/latency_model.hpp"

namespace ddbg {

struct SimulationConfig {
  std::uint64_t seed = 1;
  // Applied to every channel; defaults to uniform 1..5ms.
  std::unique_ptr<LatencyModel> latency;
  // Hard stop for run_until_quiescent, to bound runaway programs.
  TimePoint max_time{Duration::seconds(3600).ns};
  // Fault adversary.  When set, every transmission attempt consults the
  // plan and the reliability layer (seq/ack/retransmit, net/reliable.hpp)
  // re-establishes exactly-once FIFO delivery underneath the processes.
  // When null (the default) the ideal-channel fast path runs untouched.
  std::shared_ptr<FaultPlan> faults;
  // Retransmit timing when `faults` is set.
  ReliableConfig reliable;
  // Worker threads for run_until / run_until_quiescent.  1 (the default)
  // is the classic sequential loop.  More than 1 enables the windowed
  // parallel engine; results are byte-identical either way.  Falls back to
  // sequential when the latency model's min_latency() is zero (no
  // lookahead) or there are fewer processes than workers would help with.
  std::uint32_t workers = 1;
};

class Simulation {
 public:
  // One Process per Topology process id, in id order.
  Simulation(Topology topology, std::vector<ProcessPtr> processes,
             SimulationConfig config = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // ---- execution ----
  // Process events until the queue is empty or max_time is reached.
  // Returns true if the run quiesced (queue drained).
  bool run_until_quiescent();
  // Process events with time <= until.
  void run_until(TimePoint until);
  void run_for(Duration d) { run_until(now() + d); }
  // Process a single event; returns false if the queue is empty.  Always
  // sequential (single-event granularity has no window to parallelize).
  bool step();

  // Run until `condition()` holds (checked after every event) or
  // `deadline`; returns whether the condition held.  Sequential: the
  // per-event condition check is the point.
  bool run_until_condition(const std::function<bool()>& condition,
                           TimePoint deadline);

  // ---- external injection ----
  // Place an application message into a channel before the run starts, as
  // if it had been sent earlier and were still in flight — how a restored
  // global state's recorded channel contents are re-materialized.  Must be
  // called before any events are processed; preserves call order per
  // channel.
  void preload_channel(ChannelId channel, Bytes payload);
  // Execute `action` at virtual time `when` (>= now) in the simulation
  // loop.  This is how test harnesses and the debugger session script
  // interactions with a deterministic run.  Calls are serial barriers for
  // the parallel engine: the window ends before one runs.
  void schedule_call(TimePoint when, std::function<void()> action);
  // Post a closure to run as a process-context event for `target`.
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action);

  // ---- queries ----
  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] TransportStats stats() const {
    return transport_stats_from(metrics_);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] std::size_t in_flight(ChannelId channel) const;
  [[nodiscard]] std::size_t total_in_flight() const;
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  // Worker count the engine actually uses (1 when the parallel mode cannot
  // apply: workers <= 1, no lookahead, or a single process).
  [[nodiscard]] std::uint32_t effective_workers() const;

  void set_observer(TransportObserver* observer) { observer_ = observer; }

 private:
  friend class SimProcessContext;

  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    // kRelFrame/kRelAck/kRelRetry/kRelRestore exist only under a
    // FaultPlan: a data frame arriving at the reliability receiver, a
    // cumulative ack arriving back at the sender, a retransmit-timer
    // check, and a post-reset reconnect resync.
    enum class Kind {
      kStart,
      kDeliver,
      kTimer,
      kCall,
      kClosure,
      kRelFrame,
      kRelAck,
      kRelRetry,
      kRelRestore,
    } kind;
    // The process whose state the event touches; set for every kind except
    // kCall.  This is the parallel partition key: rel-sender events
    // (kRelAck/kRelRetry/kRelRestore) target the channel source, frames
    // target the destination.
    ProcessId target;
    ChannelId channel;
    std::uint64_t rel_seq = 0;  // kRelFrame: data seq; kRelAck: cum ack
    Message message;
    // Wire-encoded size, computed once at send time so delivery accounting
    // does not re-encode the message.
    std::uint32_t wire_bytes = 0;
    TimerId timer;
    std::function<void()> call;
    std::function<void(ProcessContext&, Process&)> closure;
  };

  struct EventOrder {
    bool operator()(const std::unique_ptr<Event>& a,
                    const std::unique_ptr<Event>& b) const {
      if (a->when != b->when) return a->when > b->when;  // min-heap
      return a->seq > b->seq;
    }
  };

  // One staged side effect of a worker-dispatched event, replayed by the
  // coordinator at window commit in exact sequential order.  Effects whose
  // result is order-independent (pure counter adds) are not staged; see
  // DESIGN.md for the split.
  struct Effect {
    enum class Kind : std::uint8_t {
      kPoolAcquire,      // one pooled-buffer acquire (hit/miss accounting)
      kSendFlight,       // ++in_flight + backlog watermark on `channel`
      kDeliverFlight,    // --in_flight on `channel`
      kObserverSend,     // observer_->on_send(at, channel, message)
      kObserverDeliver,  // observer_->on_deliver(at, channel, message)
      kDeferred,         // run_ordered() notification
      kChild,            // queue `child` with the next sequential seq
      kChildLocal,       // bind provisional id to the next sequential seq
    };
    Kind kind;
    ChannelId channel{};
    TimePoint at{};
    Message message{};
    std::function<void()> fn{};
    std::unique_ptr<Event> child{};
    std::uint64_t provisional = 0;
  };

  // Everything one worker-dispatched event did, in program order.
  struct ExecRecord {
    TimePoint when;
    std::uint64_t seq = 0;     // true seq, or provisional id
    bool provisional = false;  // seq is provisional (in-window child)
    std::vector<Effect> effects;
  };

  // Per-worker staging lane.  Touched only by its worker between the
  // window barriers, and only by the coordinator outside them.
  struct Lane {
    std::size_t index = 0;
    // Events assigned to this worker for the current window, (when, seq)
    // min-heap.  In-window children of local events join with provisional
    // seqs, which preserve the true relative order (see DESIGN.md).
    std::priority_queue<std::unique_ptr<Event>,
                        std::vector<std::unique_ptr<Event>>, EventOrder>
        heap;
    std::deque<ExecRecord> records;
    ExecRecord* current = nullptr;  // non-null only while dispatching
    TimePoint horizon{0};           // dispatch-locally bound (exclusive)
    std::uint64_t next_provisional = 0;
    Bytes scratch;  // wire-size encoding buffer (pool_ is coordinator-only)
  };

  void push_event(std::unique_ptr<Event> event);
  // Route a freshly created event: sequential push (lane == nullptr or no
  // dispatch in progress), local in-window dispatch, or staged for commit.
  void emit_child(Lane* lane, std::unique_ptr<Event> event);
  void dispatch(Lane* lane, Event& event);
  void do_send(Lane* lane, ProcessId sender, TimePoint at, ChannelId channel,
               Message message);
  TimerId do_set_timer(Lane* lane, ProcessId owner, TimePoint at,
                       Duration delay);
  void run_ordered_effect(Lane* lane, std::function<void()> fn);

  // ---- parallel engine ----
  // Executes one scheduling unit with `until` inclusive: either a single
  // serial barrier event (kCall/kClosure) or one conservative window.
  // Returns false when no event at or before `until` remains.
  void run_parallel(TimePoint until);
  // Worker body: dispatch this lane's shard in local (when, seq) order.
  void drain_lane(Lane& lane);
  // Replay the window's staged effects in global (when, true seq) order.
  void commit_window();
  [[nodiscard]] std::size_t owner_of(ProcessId p) const {
    return p.value() % lanes_.size();
  }

  // ---- reliability layer (faults != nullptr only) ----
  [[nodiscard]] Duration sample_latency(ChannelId channel, std::uint64_t key);
  // One physical transmission attempt of staged frame `seq`, subjected to
  // the fault plan.
  void transmit_frame(Lane* lane, TimePoint at, ChannelId channel,
                      std::uint64_t seq);
  // Retransmit everything due on `channel` and re-arm the retry event.
  void check_retries(Lane* lane, TimePoint at, ChannelId channel);
  void schedule_retry_check(Lane* lane, TimePoint at, ChannelId channel);
  void send_ack(Lane* lane, TimePoint at, ChannelId channel);
  void on_rel_frame(Lane* lane, Event& event);
  void release_delivery(Lane* lane, TimePoint at, ChannelId channel,
                        ProcessId target, Message message,
                        std::uint32_t wire_bytes);
  [[nodiscard]] std::uint32_t encoded_wire_bytes(Lane* lane,
                                                 const Message& message);

  Topology topology_;
  std::vector<ProcessPtr> processes_;
  std::vector<std::unique_ptr<ProcessContext>> contexts_;
  SimulationConfig config_;
  Rng rng_;
  std::vector<Rng> process_rngs_;

  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>,
                      EventOrder>
      queue_;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  // Transport message ids are per-channel streams (bit 63 tags them apart
  // from the debug shims' per-process ids): the id depends only on the
  // channel's own send order, never on the global interleaving, so the
  // sequential and parallel engines assign identical ids.
  std::vector<std::uint64_t> channel_msg_seq_;
  // Timer ids are per-process streams for the same reason.
  std::vector<std::uint32_t> process_timer_seq_;
  std::vector<std::unordered_set<TimerId>> cancelled_timers_;

  // Per-channel bookkeeping: last scheduled delivery time (FIFO enforcement)
  // and current in-flight count.  clear_time / send_seq are only ever
  // touched from the channel source's dispatch context (single worker);
  // in_flight is commit/coordinator state.
  std::vector<TimePoint> channel_clear_time_;
  std::vector<std::size_t> channel_in_flight_;
  // Per-channel send counts, keying the stateless latency streams.
  std::vector<std::uint64_t> channel_send_seq_;

  // Reliability state, indexed by channel; empty unless config_.faults.
  // Sender-side state is touched only by the channel source's dispatch
  // context, receiver-side only by the destination's.
  std::vector<ReliableSender> rel_send_;
  std::vector<ReliableReceiver> rel_recv_;
  std::vector<std::uint64_t> channel_attempts_;      // data fault stream
  std::vector<std::uint64_t> channel_ack_attempts_;  // ack fault stream
  std::vector<char> retry_pending_;      // a kRelRetry event is queued
  std::vector<char> reconnect_pending_;  // a post-reset resync is queued

  // Parallel engine state; lanes_ is sized on first parallel run (deque:
  // lanes hold move-only staging state and never relocate).
  std::deque<Lane> lanes_;
  std::unique_ptr<WorkerPool> pool_threads_;
  bool window_active_ = false;  // worker phase in progress (asserts)
  // Commit-time binding of provisional child ids to true seqs, per lane.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> seq_bind_;

  obs::MetricsRegistry metrics_;
  // Wire-size accounting encodes every sent message; the pool keeps that
  // from allocating per send.  Coordinator-only, like the queue: workers
  // stage a kPoolAcquire effect and encode into their lane scratch buffer
  // instead, so commit replays the exact sequential hit/miss stream.
  BufferPool pool_;
  TransportObserver* observer_ = nullptr;
  std::uint64_t events_processed_ = 0;
};

}  // namespace ddbg
