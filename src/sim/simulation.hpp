// Deterministic discrete-event simulation of a distributed program.
//
// Processes, channels and delays from the paper's model (section 2.1):
// reliable, in-order, unbounded channels with unpredictable per-message
// latency.  Everything is driven from a single event queue ordered by
// (virtual time, sequence number), so a run is a pure function of
// (topology, processes, latency model, seed) — which is what lets the
// equivalence experiment (E1) execute the *same* computation once under the
// C&L recorder and once under the Halting Algorithm and compare states.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/fault_plan.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"
#include "net/topology.hpp"
#include "net/transport_hooks.hpp"
#include "sim/latency_model.hpp"

namespace ddbg {

struct SimulationConfig {
  std::uint64_t seed = 1;
  // Applied to every channel; defaults to uniform 1..5ms.
  std::unique_ptr<LatencyModel> latency;
  // Hard stop for run_until_quiescent, to bound runaway programs.
  TimePoint max_time{Duration::seconds(3600).ns};
  // Fault adversary.  When set, every transmission attempt consults the
  // plan and the reliability layer (seq/ack/retransmit, net/reliable.hpp)
  // re-establishes exactly-once FIFO delivery underneath the processes.
  // When null (the default) the ideal-channel fast path runs untouched.
  std::shared_ptr<FaultPlan> faults;
  // Retransmit timing when `faults` is set.
  ReliableConfig reliable;
};

class Simulation {
 public:
  // One Process per Topology process id, in id order.
  Simulation(Topology topology, std::vector<ProcessPtr> processes,
             SimulationConfig config = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // ---- execution ----
  // Process events until the queue is empty or max_time is reached.
  // Returns true if the run quiesced (queue drained).
  bool run_until_quiescent();
  // Process events with time <= until.
  void run_until(TimePoint until);
  void run_for(Duration d) { run_until(now() + d); }
  // Process a single event; returns false if the queue is empty.
  bool step();

  // Run until `condition()` holds (checked after every event) or
  // `deadline`; returns whether the condition held.
  bool run_until_condition(const std::function<bool()>& condition,
                           TimePoint deadline);

  // ---- external injection ----
  // Place an application message into a channel before the run starts, as
  // if it had been sent earlier and were still in flight — how a restored
  // global state's recorded channel contents are re-materialized.  Must be
  // called before any events are processed; preserves call order per
  // channel.
  void preload_channel(ChannelId channel, Bytes payload);
  // Execute `action` at virtual time `when` (>= now) in the simulation
  // loop.  This is how test harnesses and the debugger session script
  // interactions with a deterministic run.
  void schedule_call(TimePoint when, std::function<void()> action);
  // Post a closure to run as a process-context event for `target`.
  void post(ProcessId target,
            std::function<void(ProcessContext&, Process&)> action);

  // ---- queries ----
  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Process& process(ProcessId id);
  [[nodiscard]] TransportStats stats() const {
    return transport_stats_from(metrics_);
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] std::size_t in_flight(ChannelId channel) const;
  [[nodiscard]] std::size_t total_in_flight() const;
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  void set_observer(TransportObserver* observer) { observer_ = observer; }

 private:
  friend class SimProcessContext;

  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    // kRelFrame/kRelAck/kRelRetry exist only under a FaultPlan: a data
    // frame arriving at the reliability receiver, a cumulative ack
    // arriving back at the sender, and a retransmit-timer check.
    enum class Kind {
      kStart,
      kDeliver,
      kTimer,
      kCall,
      kClosure,
      kRelFrame,
      kRelAck,
      kRelRetry,
    } kind;
    ProcessId target;
    ChannelId channel;
    std::uint64_t rel_seq = 0;  // kRelFrame: data seq; kRelAck: cum ack
    Message message;
    // Wire-encoded size, computed once at send time so delivery accounting
    // does not re-encode the message.
    std::uint32_t wire_bytes = 0;
    TimerId timer;
    std::function<void()> call;
    std::function<void(ProcessContext&, Process&)> closure;
  };

  struct EventOrder {
    bool operator()(const std::unique_ptr<Event>& a,
                    const std::unique_ptr<Event>& b) const {
      if (a->when != b->when) return a->when > b->when;  // min-heap
      return a->seq > b->seq;
    }
  };

  void push_event(std::unique_ptr<Event> event);
  void dispatch(Event& event);
  void do_send(ProcessId sender, ChannelId channel, Message message);
  TimerId do_set_timer(ProcessId owner, Duration delay);

  // ---- reliability layer (faults != nullptr only) ----
  [[nodiscard]] Duration sample_latency(ChannelId channel, std::uint64_t key);
  // One physical transmission attempt of staged frame `seq`, subjected to
  // the fault plan.
  void transmit_frame(ChannelId channel, std::uint64_t seq);
  // Retransmit everything due on `channel` and re-arm the retry event.
  void check_retries(ChannelId channel);
  void schedule_retry_check(ChannelId channel);
  void send_ack(ChannelId channel);
  void on_rel_frame(Event& event);
  void release_delivery(ChannelId channel, ProcessId target, Message message,
                        std::uint32_t wire_bytes);

  Topology topology_;
  std::vector<ProcessPtr> processes_;
  std::vector<std::unique_ptr<ProcessContext>> contexts_;
  SimulationConfig config_;
  Rng rng_;
  std::vector<Rng> process_rngs_;

  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>,
                      EventOrder>
      queue_;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_message_id_ = 1;
  std::uint32_t next_timer_id_ = 1;
  std::unordered_set<TimerId> cancelled_timers_;

  // Per-channel bookkeeping: last scheduled delivery time (FIFO enforcement)
  // and current in-flight count.
  std::vector<TimePoint> channel_clear_time_;
  std::vector<std::size_t> channel_in_flight_;
  // Per-channel send counts, keying the stateless latency streams.
  std::vector<std::uint64_t> channel_send_seq_;

  // Reliability state, indexed by channel; empty unless config_.faults.
  std::vector<ReliableSender> rel_send_;
  std::vector<ReliableReceiver> rel_recv_;
  std::vector<std::uint64_t> channel_attempts_;      // data fault stream
  std::vector<std::uint64_t> channel_ack_attempts_;  // ack fault stream
  std::vector<char> retry_pending_;      // a kRelRetry event is queued
  std::vector<char> reconnect_pending_;  // a post-reset resync is queued

  obs::MetricsRegistry metrics_;
  // Wire-size accounting encodes every sent message; the pool keeps that
  // from allocating per send.  Single-threaded like the simulator itself.
  BufferPool pool_;
  TransportObserver* observer_ = nullptr;
  std::uint64_t events_processed_ = 0;
};

}  // namespace ddbg
