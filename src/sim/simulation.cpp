#include "sim/simulation.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/serialization.hpp"

namespace ddbg {

// ProcessContext implementation bound to one simulated process.
class SimProcessContext final : public ProcessContext {
 public:
  SimProcessContext(Simulation& sim, ProcessId self, Rng& rng)
      : sim_(sim), self_(self), rng_(rng) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] TimePoint now() const override { return sim_.now(); }
  [[nodiscard]] const Topology& topology() const override {
    return sim_.topology();
  }

  void send(ChannelId channel, Message message) override {
    sim_.do_send(self_, channel, std::move(message));
  }

  TimerId set_timer(Duration delay) override {
    return sim_.do_set_timer(self_, delay);
  }

  void cancel_timer(TimerId timer) override {
    sim_.cancelled_timers_.insert(timer);
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &sim_.metrics_;
  }

  void stop_self() override { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  Simulation& sim_;
  ProcessId self_;
  Rng& rng_;
  bool stopped_ = false;
};

Simulation::Simulation(Topology topology, std::vector<ProcessPtr> processes,
                       SimulationConfig config)
    : topology_(std::move(topology)),
      processes_(std::move(processes)),
      config_(std::move(config)),
      rng_(config_.seed),
      metrics_("sim", topology_.num_processes(), channel_meta(topology_)) {
  DDBG_ASSERT(processes_.size() == topology_.num_processes(),
              "one Process per topology process required");
  if (!config_.latency) {
    config_.latency = uniform_latency(Duration::millis(1), Duration::millis(5));
  }
  process_rngs_.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    process_rngs_.push_back(rng_.fork());
  }
  contexts_.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    contexts_.push_back(std::make_unique<SimProcessContext>(
        *this, ProcessId(static_cast<std::uint32_t>(i)), process_rngs_[i]));
  }
  channel_clear_time_.assign(topology_.num_channels(), TimePoint{0});
  channel_in_flight_.assign(topology_.num_channels(), 0);
  channel_send_seq_.assign(topology_.num_channels(), 0);
  if (config_.faults) {
    rel_send_.assign(topology_.num_channels(),
                     ReliableSender(config_.reliable));
    rel_recv_.assign(topology_.num_channels(), ReliableReceiver());
    channel_attempts_.assign(topology_.num_channels(), 0);
    channel_ack_attempts_.assign(topology_.num_channels(), 0);
    retry_pending_.assign(topology_.num_channels(), 0);
    reconnect_pending_.assign(topology_.num_channels(), 0);
  }

  // Schedule on_start for every process at t=0, in id order.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    auto event = std::make_unique<Event>();
    event->when = TimePoint{0};
    event->kind = Event::Kind::kStart;
    event->target = ProcessId(static_cast<std::uint32_t>(i));
    push_event(std::move(event));
  }
}

Simulation::~Simulation() = default;

Process& Simulation::process(ProcessId id) {
  DDBG_ASSERT(id.value() < processes_.size(), "unknown process");
  return *processes_[id.value()];
}

std::size_t Simulation::in_flight(ChannelId channel) const {
  DDBG_ASSERT(channel.value() < channel_in_flight_.size(), "unknown channel");
  return channel_in_flight_[channel.value()];
}

std::size_t Simulation::total_in_flight() const {
  std::size_t total = 0;
  for (const std::size_t n : channel_in_flight_) total += n;
  return total;
}

void Simulation::push_event(std::unique_ptr<Event> event) {
  event->seq = next_seq_++;
  queue_.push(std::move(event));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is removed before dispatch.
  auto event = std::move(const_cast<std::unique_ptr<Event>&>(queue_.top()));
  queue_.pop();
  DDBG_ASSERT(event->when >= now_, "simulation time went backwards");
  now_ = event->when;
  dispatch(*event);
  ++events_processed_;
  return true;
}

bool Simulation::run_until_quiescent() {
  while (!queue_.empty()) {
    if (queue_.top()->when > config_.max_time) return false;
    step();
  }
  return true;
}

void Simulation::run_until(TimePoint until) {
  while (!queue_.empty() && queue_.top()->when <= until) step();
  if (now_ < until) now_ = until;
}

bool Simulation::run_until_condition(const std::function<bool()>& condition,
                                     TimePoint deadline) {
  if (condition()) return true;
  while (!queue_.empty() && queue_.top()->when <= deadline) {
    step();
    if (condition()) return true;
  }
  return false;
}

void Simulation::preload_channel(ChannelId channel, Bytes payload) {
  DDBG_ASSERT(events_processed_ == 0,
              "preload_channel must run before the simulation starts");
  DDBG_ASSERT(channel.value() < topology_.num_channels(), "unknown channel");
  const ChannelSpec& spec = topology_.channel(channel);
  Message message = Message::application(std::move(payload));
  message.message_id = next_message_id_++;
  ++channel_in_flight_[channel.value()];
  std::uint32_t wire_bytes = 0;
  {
    BufferPool::Lease lease = pool_.acquire();
    metrics_.on_pool_acquire(lease.reused());
    ByteWriter writer(lease.bytes());
    message.encode(writer);
    wire_bytes = static_cast<std::uint32_t>(writer.size());
  }

  auto event = std::make_unique<Event>();
  // Delivered at t=0 after the on_start events (which were queued first),
  // in preload order.
  event->when = TimePoint{0};
  event->kind = Event::Kind::kDeliver;
  event->target = spec.destination;
  event->channel = channel;
  event->message = std::move(message);
  event->wire_bytes = wire_bytes;
  push_event(std::move(event));
}

void Simulation::schedule_call(TimePoint when, std::function<void()> action) {
  DDBG_ASSERT(when >= now_, "cannot schedule in the past");
  auto event = std::make_unique<Event>();
  event->when = when;
  event->kind = Event::Kind::kCall;
  event->call = std::move(action);
  push_event(std::move(event));
}

void Simulation::post(ProcessId target,
                      std::function<void(ProcessContext&, Process&)> action) {
  auto event = std::make_unique<Event>();
  event->when = now_;
  event->kind = Event::Kind::kClosure;
  event->target = target;
  event->closure = std::move(action);
  push_event(std::move(event));
}

void Simulation::dispatch(Event& event) {
  switch (event.kind) {
    case Event::Kind::kStart: {
      auto& ctx = *contexts_[event.target.value()];
      processes_[event.target.value()]->on_start(ctx);
      break;
    }
    case Event::Kind::kDeliver: {
      const std::size_t c = event.channel.value();
      DDBG_ASSERT(channel_in_flight_[c] > 0, "delivery without a send");
      --channel_in_flight_[c];
      metrics_.on_deliver(event.channel.value(),
                          traffic_class(event.message.kind),
                          event.wire_bytes);
      // Event-at-a-time delivery: every batch is a single message, kept in
      // the counters so the parity invariant (batch messages == deliveries)
      // holds across all three runtimes.
      metrics_.on_deliver_batch(1);
      if (observer_ != nullptr) {
        observer_->on_deliver(now_, event.channel, event.message);
      }
      auto& ctx = *contexts_[event.target.value()];
      processes_[event.target.value()]->on_message(ctx, event.channel,
                                                   std::move(event.message));
      break;
    }
    case Event::Kind::kTimer: {
      if (cancelled_timers_.erase(event.timer) > 0) break;
      auto& ctx = *contexts_[event.target.value()];
      processes_[event.target.value()]->on_timer(ctx, event.timer);
      break;
    }
    case Event::Kind::kCall:
      event.call();
      break;
    case Event::Kind::kClosure: {
      auto& ctx = *contexts_[event.target.value()];
      event.closure(ctx, *processes_[event.target.value()]);
      break;
    }
    case Event::Kind::kRelFrame:
      on_rel_frame(event);
      break;
    case Event::Kind::kRelAck:
      rel_send_[event.channel.value()].ack(event.rel_seq);
      break;
    case Event::Kind::kRelRetry:
      retry_pending_[event.channel.value()] = 0;
      check_retries(event.channel);
      break;
  }
}

void Simulation::do_send(ProcessId sender, ChannelId channel,
                         Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  // Debug shims pre-assign globally unique ids so traces can pair sends
  // with receives; everything else (markers, control) gets a transport id.
  if (message.message_id == 0) message.message_id = next_message_id_++;

  // Wire-size accounting encodes into a pooled buffer so steady-state
  // sends allocate nothing.
  std::uint32_t wire_bytes = 0;
  {
    BufferPool::Lease lease = pool_.acquire();
    metrics_.on_pool_acquire(lease.reused());
    ByteWriter writer(lease.bytes());
    message.encode(writer);
    wire_bytes = static_cast<std::uint32_t>(writer.size());
  }
  metrics_.on_send(channel.value(), traffic_class(message.kind), wire_bytes);
  if (observer_ != nullptr) observer_->on_send(now_, channel, message);

  ++channel_in_flight_[channel.value()];
  metrics_.observe_backlog(channel.value(),
                           channel_in_flight_[channel.value()]);

  if (config_.faults) {
    // Lossy transport: stage in the retransmit window, then subject the
    // first physical transmission attempt to the fault plan.  In-order
    // release is the receiver's job, so no FIFO floor here.
    const std::uint64_t seq = rel_send_[channel.value()].stage(
        std::move(message), wire_bytes, now_);
    transmit_frame(channel, seq);
    schedule_retry_check(channel);
    return;
  }

  // Latency is drawn from a stateless per-message stream keyed by
  // (seed, channel, per-channel sequence number) rather than a shared
  // generator.  Two runs that execute identical prefixes therefore see
  // identical delays for the shared prefix even if they diverge later —
  // the property the S_h == S_r equivalence experiment rests on.
  const std::uint64_t seq = channel_send_seq_[channel.value()]++;
  const Duration delay = sample_latency(channel, seq);
  TimePoint deliver_at = now_ + delay;
  // FIFO enforcement: never deliver before a previously sent message on the
  // same channel.
  TimePoint& clear_time = channel_clear_time_[channel.value()];
  if (deliver_at < clear_time) deliver_at = clear_time;
  clear_time = deliver_at;

  auto event = std::make_unique<Event>();
  event->when = deliver_at;
  event->kind = Event::Kind::kDeliver;
  event->target = spec.destination;
  event->channel = channel;
  event->message = std::move(message);
  event->wire_bytes = wire_bytes;
  push_event(std::move(event));
}

Duration Simulation::sample_latency(ChannelId channel, std::uint64_t key) {
  Rng latency_rng(config_.seed ^
                  (static_cast<std::uint64_t>(channel.value()) + 1) *
                      0x9e3779b97f4a7c15ULL ^
                  (key + 1) * 0xc2b2ae3d27d4eb4fULL);
  const Duration delay = config_.latency->sample(channel, latency_rng);
  DDBG_ASSERT(delay.ns >= 0, "latency must be non-negative");
  return delay;
}

void Simulation::transmit_frame(ChannelId channel, std::uint64_t seq) {
  const std::size_t c = channel.value();
  const ReliableSender::Staged* staged = rel_send_[c].peek(seq);
  if (staged == nullptr) return;  // acked while a retry was queued
  const std::uint64_t attempt = channel_attempts_[c]++;
  const FaultDecision fault = config_.faults->decide(channel, attempt);
  Duration delay = sample_latency(channel, attempt);

  switch (fault.kind) {
    case FaultKind::kDrop:
    case FaultKind::kPartition:
      metrics_.on_fault(fault_index(fault.kind));
      return;  // frame vanishes; the retransmit timer recovers
    case FaultKind::kReset: {
      metrics_.on_fault(fault_index(fault.kind));
      metrics_.on_channel_down();
      // The frame is lost with the connection.  Model reconnection as a
      // delayed resync: once the channel is back, every unacked frame is
      // replayed (at most one reconnect in flight per channel).
      if (reconnect_pending_[c] != 0) return;
      reconnect_pending_[c] = 1;
      schedule_call(now_ + config_.reliable.rto_initial, [this, channel] {
        const std::size_t cc = channel.value();
        reconnect_pending_[cc] = 0;
        metrics_.on_reconnect();
        const std::size_t replayed = rel_send_[cc].mark_all_due(now_);
        metrics_.on_resync_replayed(replayed);
        check_retries(channel);
      });
      return;
    }
    case FaultKind::kDuplicate: {
      metrics_.on_fault(fault_index(fault.kind));
      // Second copy rides a delay drawn from the ack stream's key space so
      // it is independent of (and often overtakes) the first.
      const Duration dup_delay =
          sample_latency(channel, attempt ^ 0x8000000000000000ULL);
      auto dup = std::make_unique<Event>();
      dup->when = now_ + dup_delay;
      dup->kind = Event::Kind::kRelFrame;
      dup->target = topology_.channel(channel).destination;
      dup->channel = channel;
      dup->rel_seq = seq;
      dup->message = staged->message;
      dup->wire_bytes = static_cast<std::uint32_t>(staged->meta);
      push_event(std::move(dup));
      break;
    }
    case FaultKind::kReorder:
    case FaultKind::kDelay:
      metrics_.on_fault(fault_index(fault.kind));
      delay = delay + fault.extra_delay;
      break;
    case FaultKind::kNone:
      break;
  }

  auto event = std::make_unique<Event>();
  event->when = now_ + delay;
  event->kind = Event::Kind::kRelFrame;
  event->target = topology_.channel(channel).destination;
  event->channel = channel;
  event->rel_seq = seq;
  event->message = staged->message;
  event->wire_bytes = static_cast<std::uint32_t>(staged->meta);
  push_event(std::move(event));
}

void Simulation::schedule_retry_check(ChannelId channel) {
  const std::size_t c = channel.value();
  if (retry_pending_[c] != 0) return;
  const auto deadline = rel_send_[c].next_deadline();
  if (!deadline.has_value()) return;
  retry_pending_[c] = 1;
  auto event = std::make_unique<Event>();
  event->when = *deadline < now_ ? now_ : *deadline;
  event->kind = Event::Kind::kRelRetry;
  event->channel = channel;
  push_event(std::move(event));
}

void Simulation::check_retries(ChannelId channel) {
  const std::size_t c = channel.value();
  for (const std::uint64_t seq : rel_send_[c].due(now_)) {
    metrics_.on_retransmit();
    transmit_frame(channel, seq);
  }
  schedule_retry_check(channel);
}

void Simulation::send_ack(ChannelId channel) {
  const std::size_t c = channel.value();
  const std::uint64_t attempt = channel_ack_attempts_[c]++;
  const FaultDecision fault = config_.faults->decide_ack(channel, attempt);
  if (fault.kind == FaultKind::kDrop) {
    metrics_.on_fault(fault_index(fault.kind));
    return;  // a later (re)transmission elicits a fresh ack
  }
  Duration delay =
      sample_latency(channel, attempt ^ 0x4000000000000000ULL);
  if (fault.kind == FaultKind::kDelay) {
    metrics_.on_fault(fault_index(fault.kind));
    delay = delay + fault.extra_delay;
  }
  auto event = std::make_unique<Event>();
  event->when = now_ + delay;
  event->kind = Event::Kind::kRelAck;
  event->channel = channel;
  event->rel_seq = rel_recv_[c].cum_ack();
  push_event(std::move(event));
}

void Simulation::on_rel_frame(Event& event) {
  const std::size_t c = event.channel.value();
  std::vector<ReliableReceiver::Delivery> released;
  const auto accept = rel_recv_[c].on_frame(
      event.rel_seq, std::move(event.message), event.wire_bytes, released);
  if (accept == ReliableReceiver::Accept::kDuplicate) {
    metrics_.on_dup_suppressed();
  }
  for (auto& delivery : released) {
    release_delivery(event.channel, event.target, std::move(delivery.message),
                     static_cast<std::uint32_t>(delivery.meta));
  }
  // Ack every arrival, duplicates included: a re-ack is what stops the
  // sender retransmitting a frame whose ack was lost.
  send_ack(event.channel);
}

void Simulation::release_delivery(ChannelId channel, ProcessId target,
                                  Message message, std::uint32_t wire_bytes) {
  const std::size_t c = channel.value();
  DDBG_ASSERT(channel_in_flight_[c] > 0, "release without a send");
  --channel_in_flight_[c];
  metrics_.on_deliver(channel.value(), traffic_class(message.kind),
                      wire_bytes);
  metrics_.on_deliver_batch(1);
  if (observer_ != nullptr) {
    observer_->on_deliver(now_, channel, message);
  }
  auto& ctx = *contexts_[target.value()];
  processes_[target.value()]->on_message(ctx, channel, std::move(message));
}

TimerId Simulation::do_set_timer(ProcessId owner, Duration delay) {
  DDBG_ASSERT(delay.ns >= 0, "timer delay must be non-negative");
  const TimerId id(next_timer_id_++);
  auto event = std::make_unique<Event>();
  event->when = now_ + delay;
  event->kind = Event::Kind::kTimer;
  event->target = owner;
  event->timer = id;
  push_event(std::move(event));
  return id;
}

}  // namespace ddbg
