#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "common/serialization.hpp"

namespace ddbg {

namespace {

// Provisional sequence ids for in-window children live above every real
// seq the run can assign; within one lane they increase in creation order,
// which equals true-seq order for same-lane comparisons (DESIGN.md).
constexpr std::uint64_t kProvisionalBase = 1ULL << 63;

// Transport message ids (assigned to marker/control messages the debug
// shims did not pre-stamp) are per-channel streams: bit 63 tags them apart
// from shim ids, the channel sits above a 32-bit per-channel counter.  The
// id depends only on the channel's own send order, so the sequential and
// parallel engines agree on every id — and therefore on every wire size.
[[nodiscard]] std::uint64_t transport_message_id(ChannelId channel,
                                                 std::uint64_t seq) {
  DDBG_ASSERT(seq < (1ULL << 32), "per-channel message stream exhausted");
  return (1ULL << 63) | (static_cast<std::uint64_t>(channel.value()) << 32) |
         seq;
}

}  // namespace

// ProcessContext implementation bound to one simulated process.  The
// engine re-binds `at` (the dispatching event's virtual time) and `lane`
// (the staging lane of the worker running the dispatch; null on every
// sequential path) before each handler invocation.
class SimProcessContext final : public ProcessContext {
 public:
  SimProcessContext(Simulation& sim, ProcessId self, Rng& rng)
      : sim_(sim), self_(self), rng_(rng) {}

  void bind_dispatch(TimePoint at, Simulation::Lane* lane) {
    at_ = at;
    lane_ = lane;
  }

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] TimePoint now() const override { return at_; }
  [[nodiscard]] const Topology& topology() const override {
    return sim_.topology();
  }

  void send(ChannelId channel, Message message) override {
    sim_.do_send(lane_, self_, at_, channel, std::move(message));
  }

  TimerId set_timer(Duration delay) override {
    return sim_.do_set_timer(lane_, self_, at_, delay);
  }

  void cancel_timer(TimerId timer) override {
    sim_.cancelled_timers_[self_.value()].insert(timer);
  }

  void run_ordered(std::function<void()> fn) override {
    sim_.run_ordered_effect(lane_, std::move(fn));
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return &sim_.metrics_;
  }

  void stop_self() override { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  Simulation& sim_;
  ProcessId self_;
  Rng& rng_;
  TimePoint at_{0};
  Simulation::Lane* lane_ = nullptr;
  bool stopped_ = false;
};

Simulation::Simulation(Topology topology, std::vector<ProcessPtr> processes,
                       SimulationConfig config)
    : topology_(std::move(topology)),
      processes_(std::move(processes)),
      config_(std::move(config)),
      rng_(config_.seed),
      metrics_("sim", topology_.num_processes(), channel_meta(topology_)) {
  DDBG_ASSERT(processes_.size() == topology_.num_processes(),
              "one Process per topology process required");
  if (!config_.latency) {
    config_.latency = uniform_latency(Duration::millis(1), Duration::millis(5));
  }
  process_rngs_.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    process_rngs_.push_back(rng_.fork());
  }
  contexts_.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    contexts_.push_back(std::make_unique<SimProcessContext>(
        *this, ProcessId(static_cast<std::uint32_t>(i)), process_rngs_[i]));
  }
  channel_msg_seq_.assign(topology_.num_channels(), 0);
  process_timer_seq_.assign(processes_.size(), 0);
  cancelled_timers_.resize(processes_.size());
  channel_clear_time_.assign(topology_.num_channels(), TimePoint{0});
  channel_in_flight_.assign(topology_.num_channels(), 0);
  channel_send_seq_.assign(topology_.num_channels(), 0);
  if (config_.faults) {
    rel_send_.assign(topology_.num_channels(),
                     ReliableSender(config_.reliable));
    rel_recv_.assign(topology_.num_channels(), ReliableReceiver());
    channel_attempts_.assign(topology_.num_channels(), 0);
    channel_ack_attempts_.assign(topology_.num_channels(), 0);
    retry_pending_.assign(topology_.num_channels(), 0);
    reconnect_pending_.assign(topology_.num_channels(), 0);
  }

  // Schedule on_start for every process at t=0, in id order.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    auto event = std::make_unique<Event>();
    event->when = TimePoint{0};
    event->kind = Event::Kind::kStart;
    event->target = ProcessId(static_cast<std::uint32_t>(i));
    push_event(std::move(event));
  }
}

Simulation::~Simulation() = default;

Process& Simulation::process(ProcessId id) {
  DDBG_ASSERT(id.value() < processes_.size(), "unknown process");
  return *processes_[id.value()];
}

std::size_t Simulation::in_flight(ChannelId channel) const {
  DDBG_ASSERT(channel.value() < channel_in_flight_.size(), "unknown channel");
  return channel_in_flight_[channel.value()];
}

std::size_t Simulation::total_in_flight() const {
  std::size_t total = 0;
  for (const std::size_t n : channel_in_flight_) total += n;
  return total;
}

std::uint32_t Simulation::effective_workers() const {
  if (config_.workers <= 1) return 1;
  if (config_.latency->min_latency().ns <= 0) return 1;  // no lookahead
  return std::min(config_.workers, topology_.num_processes());
}

void Simulation::push_event(std::unique_ptr<Event> event) {
  event->seq = next_seq_++;
  queue_.push(std::move(event));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is removed before dispatch.
  auto event = std::move(const_cast<std::unique_ptr<Event>&>(queue_.top()));
  queue_.pop();
  DDBG_ASSERT(event->when >= now_, "simulation time went backwards");
  now_ = event->when;
  dispatch(nullptr, *event);
  ++events_processed_;
  return true;
}

bool Simulation::run_until_quiescent() {
  if (effective_workers() > 1) {
    run_parallel(config_.max_time);
    return queue_.empty();
  }
  while (!queue_.empty()) {
    if (queue_.top()->when > config_.max_time) return false;
    step();
  }
  return true;
}

void Simulation::run_until(TimePoint until) {
  if (effective_workers() > 1) {
    run_parallel(until);
  } else {
    while (!queue_.empty() && queue_.top()->when <= until) step();
  }
  if (now_ < until) now_ = until;
}

bool Simulation::run_until_condition(const std::function<bool()>& condition,
                                     TimePoint deadline) {
  if (condition()) return true;
  while (!queue_.empty() && queue_.top()->when <= deadline) {
    step();
    if (condition()) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parallel engine.
//
// One iteration handles either a serial barrier event (kCall/kClosure: the
// harness poking the run; it may touch anything, so nothing else is in
// flight) or one conservative window [T0, T0 + min_latency).  Every event
// already queued inside the window is extracted and routed to the worker
// that owns its target process; the lookahead guarantees no event inside
// the window can *create* work for another worker inside the same window,
// so each worker can dispatch its shard in local (when, seq) order without
// synchronization.  Effects whose order is observable — queue pushes (seq
// assignment), in-flight/backlog accounting, pool hit/miss accounting,
// observer callbacks, run_ordered notifications — are staged per dispatched
// event and replayed at commit in the exact order the sequential loop would
// have produced, which is what makes the two modes byte-identical.
// ---------------------------------------------------------------------------

void Simulation::run_parallel(TimePoint until) {
  const std::uint32_t workers = effective_workers();
  if (lanes_.size() != workers) {
    DDBG_ASSERT(lanes_.empty(), "worker count is fixed once lanes exist");
    for (std::size_t i = 0; i < workers; ++i) {
      lanes_.emplace_back();
      lanes_.back().index = i;
    }
    seq_bind_.resize(workers);
    pool_threads_ = std::make_unique<WorkerPool>(workers);
  }
  const Duration delta = config_.latency->min_latency();
  std::vector<std::unique_ptr<Event>> batch;
  while (!queue_.empty() && queue_.top()->when <= until) {
    const Event& top = *queue_.top();
    if (top.kind == Event::Kind::kCall || top.kind == Event::Kind::kClosure) {
      step();  // serial barrier: runs alone, exactly like the sequential loop
      continue;
    }
    const TimePoint t0 = top.when;
    TimePoint window_end = t0 + delta;
    if (window_end.ns > until.ns + 1) window_end = TimePoint{until.ns + 1};

    // Extract the window's batch, stopping short of any barrier event.
    batch.clear();
    TimePoint horizon = window_end;
    while (!queue_.empty()) {
      const Event& head = *queue_.top();
      if (head.when >= window_end) break;
      if (head.kind == Event::Kind::kCall ||
          head.kind == Event::Kind::kClosure) {
        // Children born at or after the barrier must dispatch after it.
        horizon = head.when;
        break;
      }
      batch.push_back(
          std::move(const_cast<std::unique_ptr<Event>&>(queue_.top())));
      queue_.pop();
    }
    DDBG_ASSERT(!batch.empty(), "window extracted no events");

    if (batch.size() == 1) {
      // Degenerate window: the barrier machinery would only add overhead,
      // and serial dispatch is definitionally sequential-equivalent.
      auto event = std::move(batch.front());
      DDBG_ASSERT(event->when >= now_, "simulation time went backwards");
      now_ = event->when;
      dispatch(nullptr, *event);
      ++events_processed_;
      continue;
    }

    for (auto& event : batch) {
      lanes_[owner_of(event->target)].heap.push(std::move(event));
    }
    for (Lane& lane : lanes_) {
      lane.horizon = horizon;
      lane.next_provisional = 0;
    }
    window_active_ = true;
    pool_threads_->run([this](std::size_t i) { drain_lane(lanes_[i]); });
    window_active_ = false;
    commit_window();
  }
}

void Simulation::drain_lane(Lane& lane) {
  while (!lane.heap.empty()) {
    auto event =
        std::move(const_cast<std::unique_ptr<Event>&>(lane.heap.top()));
    lane.heap.pop();
    lane.records.emplace_back();
    ExecRecord& record = lane.records.back();
    record.when = event->when;
    record.seq = event->seq;
    record.provisional = event->seq >= kProvisionalBase;
    lane.current = &record;
    dispatch(&lane, *event);
    lane.current = nullptr;
  }
}

void Simulation::commit_window() {
  while (true) {
    // K-way merge of the lanes' record streams by (when, true seq).  A
    // provisional head's true seq is always already bound: its parent
    // replayed earlier in the same stream.
    Lane* best = nullptr;
    std::uint64_t best_seq = 0;
    for (Lane& lane : lanes_) {
      if (lane.records.empty()) continue;
      const ExecRecord& head = lane.records.front();
      std::uint64_t seq = head.seq;
      if (head.provisional) {
        const auto it = seq_bind_[lane.index].find(head.seq);
        DDBG_ASSERT(it != seq_bind_[lane.index].end(),
                    "in-window child replayed before its parent");
        seq = it->second;
      }
      if (best == nullptr || head.when < best->records.front().when ||
          (head.when == best->records.front().when && seq < best_seq)) {
        best = &lane;
        best_seq = seq;
      }
    }
    if (best == nullptr) break;
    ExecRecord record = std::move(best->records.front());
    best->records.pop_front();
    DDBG_ASSERT(record.when >= now_, "simulation time went backwards");
    now_ = record.when;
    for (Effect& effect : record.effects) {
      switch (effect.kind) {
        case Effect::Kind::kPoolAcquire: {
          // Mirrors the sequential send path's acquire/release exactly, so
          // the hit/miss split in the metrics comes out identical.
          BufferPool::Lease lease = pool_.acquire();
          metrics_.on_pool_acquire(lease.reused());
          break;
        }
        case Effect::Kind::kSendFlight: {
          const std::size_t c = effect.channel.value();
          ++channel_in_flight_[c];
          metrics_.observe_backlog(c, channel_in_flight_[c]);
          break;
        }
        case Effect::Kind::kDeliverFlight: {
          const std::size_t c = effect.channel.value();
          DDBG_ASSERT(channel_in_flight_[c] > 0, "delivery without a send");
          --channel_in_flight_[c];
          break;
        }
        case Effect::Kind::kObserverSend:
          observer_->on_send(effect.at, effect.channel, effect.message);
          break;
        case Effect::Kind::kObserverDeliver:
          observer_->on_deliver(effect.at, effect.channel, effect.message);
          break;
        case Effect::Kind::kDeferred:
          effect.fn();
          break;
        case Effect::Kind::kChild:
          effect.child->seq = next_seq_++;
          queue_.push(std::move(effect.child));
          break;
        case Effect::Kind::kChildLocal:
          seq_bind_[best->index][effect.provisional] = next_seq_++;
          break;
      }
    }
    ++events_processed_;
  }
  for (auto& bindings : seq_bind_) bindings.clear();
}

void Simulation::emit_child(Lane* lane, std::unique_ptr<Event> event) {
  if (lane == nullptr || lane->current == nullptr) {
    push_event(std::move(event));
    return;
  }
  Effect effect;
  if (event->when < lane->horizon) {
    // In-window child: dispatched by this worker within the window.  The
    // lookahead bound makes cross-worker children impossible here — only
    // same-process work (timers, retransmit checks, reconnect resyncs) can
    // land inside the window.
    DDBG_ASSERT(owner_of(event->target) == lane->index,
                "lookahead violation: in-window child crosses workers "
                "(latency model's min_latency() is not a lower bound?)");
    DDBG_ASSERT(event->kind != Event::Kind::kCall &&
                    event->kind != Event::Kind::kClosure,
                "barrier events cannot be created during a window");
    event->seq = kProvisionalBase + lane->next_provisional++;
    effect.kind = Effect::Kind::kChildLocal;
    effect.provisional = event->seq;
    lane->current->effects.push_back(std::move(effect));
    lane->heap.push(std::move(event));
    return;
  }
  effect.kind = Effect::Kind::kChild;
  effect.child = std::move(event);
  lane->current->effects.push_back(std::move(effect));
}

void Simulation::run_ordered_effect(Lane* lane, std::function<void()> fn) {
  if (lane == nullptr || lane->current == nullptr) {
    fn();
    return;
  }
  Effect effect;
  effect.kind = Effect::Kind::kDeferred;
  effect.fn = std::move(fn);
  lane->current->effects.push_back(std::move(effect));
}

// ---------------------------------------------------------------------------
// Event injection and dispatch.
// ---------------------------------------------------------------------------

void Simulation::preload_channel(ChannelId channel, Bytes payload) {
  DDBG_ASSERT(events_processed_ == 0,
              "preload_channel must run before the simulation starts");
  DDBG_ASSERT(channel.value() < topology_.num_channels(), "unknown channel");
  const ChannelSpec& spec = topology_.channel(channel);
  Message message = Message::application(std::move(payload));
  message.message_id =
      transport_message_id(channel, ++channel_msg_seq_[channel.value()]);
  ++channel_in_flight_[channel.value()];
  std::uint32_t wire_bytes = 0;
  {
    BufferPool::Lease lease = pool_.acquire();
    metrics_.on_pool_acquire(lease.reused());
    ByteWriter writer(lease.bytes());
    message.encode(writer);
    wire_bytes = static_cast<std::uint32_t>(writer.size());
  }

  auto event = std::make_unique<Event>();
  // Delivered at t=0 after the on_start events (which were queued first),
  // in preload order.
  event->when = TimePoint{0};
  event->kind = Event::Kind::kDeliver;
  event->target = spec.destination;
  event->channel = channel;
  event->message = std::move(message);
  event->wire_bytes = wire_bytes;
  push_event(std::move(event));
}

void Simulation::schedule_call(TimePoint when, std::function<void()> action) {
  DDBG_ASSERT(when >= now_, "cannot schedule in the past");
  DDBG_ASSERT(!window_active_, "cannot inject calls during a parallel window");
  auto event = std::make_unique<Event>();
  event->when = when;
  event->kind = Event::Kind::kCall;
  event->call = std::move(action);
  push_event(std::move(event));
}

void Simulation::post(ProcessId target,
                      std::function<void(ProcessContext&, Process&)> action) {
  DDBG_ASSERT(!window_active_, "cannot post closures during a parallel window");
  auto event = std::make_unique<Event>();
  event->when = now_;
  event->kind = Event::Kind::kClosure;
  event->target = target;
  event->closure = std::move(action);
  push_event(std::move(event));
}

void Simulation::dispatch(Lane* lane, Event& event) {
  const TimePoint at = event.when;
  const auto context_for = [&](ProcessId p) -> SimProcessContext& {
    auto& ctx = static_cast<SimProcessContext&>(*contexts_[p.value()]);
    ctx.bind_dispatch(at, lane);
    return ctx;
  };
  switch (event.kind) {
    case Event::Kind::kStart: {
      auto& ctx = context_for(event.target);
      processes_[event.target.value()]->on_start(ctx);
      break;
    }
    case Event::Kind::kDeliver: {
      const std::size_t c = event.channel.value();
      metrics_.on_deliver(c, traffic_class(event.message.kind),
                          event.wire_bytes);
      // Event-at-a-time delivery: every batch is a single message, kept in
      // the counters so the parity invariant (batch messages == deliveries)
      // holds across all three runtimes.
      metrics_.on_deliver_batch(1);
      if (lane != nullptr && lane->current != nullptr) {
        Effect flight;
        flight.kind = Effect::Kind::kDeliverFlight;
        flight.channel = event.channel;
        lane->current->effects.push_back(std::move(flight));
        if (observer_ != nullptr) {
          Effect obs;
          obs.kind = Effect::Kind::kObserverDeliver;
          obs.channel = event.channel;
          obs.at = at;
          obs.message = event.message;
          lane->current->effects.push_back(std::move(obs));
        }
      } else {
        DDBG_ASSERT(channel_in_flight_[c] > 0, "delivery without a send");
        --channel_in_flight_[c];
        if (observer_ != nullptr) {
          observer_->on_deliver(at, event.channel, event.message);
        }
      }
      auto& ctx = context_for(event.target);
      processes_[event.target.value()]->on_message(ctx, event.channel,
                                                   std::move(event.message));
      break;
    }
    case Event::Kind::kTimer: {
      if (cancelled_timers_[event.target.value()].erase(event.timer) > 0) {
        break;
      }
      auto& ctx = context_for(event.target);
      processes_[event.target.value()]->on_timer(ctx, event.timer);
      break;
    }
    case Event::Kind::kCall:
      DDBG_ASSERT(lane == nullptr, "barrier events dispatch serially");
      event.call();
      break;
    case Event::Kind::kClosure: {
      DDBG_ASSERT(lane == nullptr, "barrier events dispatch serially");
      auto& ctx = context_for(event.target);
      event.closure(ctx, *processes_[event.target.value()]);
      break;
    }
    case Event::Kind::kRelFrame:
      on_rel_frame(lane, event);
      break;
    case Event::Kind::kRelAck:
      rel_send_[event.channel.value()].ack(event.rel_seq);
      break;
    case Event::Kind::kRelRetry:
      retry_pending_[event.channel.value()] = 0;
      check_retries(lane, at, event.channel);
      break;
    case Event::Kind::kRelRestore: {
      const std::size_t c = event.channel.value();
      reconnect_pending_[c] = 0;
      metrics_.on_reconnect();
      const std::size_t replayed = rel_send_[c].mark_all_due(at);
      metrics_.on_resync_replayed(replayed);
      check_retries(lane, at, event.channel);
      break;
    }
  }
}

std::uint32_t Simulation::encoded_wire_bytes(Lane* lane,
                                             const Message& message) {
  // Wire-size accounting encodes into a pooled buffer so steady-state
  // sends allocate nothing.  The pool itself is coordinator state, so a
  // staging worker encodes into its lane scratch buffer and stages one
  // acquire for the commit replay to account.
  if (lane != nullptr && lane->current != nullptr) {
    Effect effect;
    effect.kind = Effect::Kind::kPoolAcquire;
    lane->current->effects.push_back(std::move(effect));
    lane->scratch.clear();
    ByteWriter writer(lane->scratch);
    message.encode(writer);
    return static_cast<std::uint32_t>(writer.size());
  }
  BufferPool::Lease lease = pool_.acquire();
  metrics_.on_pool_acquire(lease.reused());
  ByteWriter writer(lease.bytes());
  message.encode(writer);
  return static_cast<std::uint32_t>(writer.size());
}

void Simulation::do_send(Lane* lane, ProcessId sender, TimePoint at,
                         ChannelId channel, Message message) {
  const ChannelSpec& spec = topology_.channel(channel);
  DDBG_ASSERT(spec.source == sender,
              "process may only send on its own outgoing channels");
  // Debug shims pre-assign globally unique ids so traces can pair sends
  // with receives; everything else (markers, control) gets a transport id
  // from the channel's own deterministic stream.
  if (message.message_id == 0) {
    message.message_id =
        transport_message_id(channel, ++channel_msg_seq_[channel.value()]);
  }

  const std::uint32_t wire_bytes = encoded_wire_bytes(lane, message);
  metrics_.on_send(channel.value(), traffic_class(message.kind), wire_bytes);
  if (lane != nullptr && lane->current != nullptr) {
    if (observer_ != nullptr) {
      Effect obs;
      obs.kind = Effect::Kind::kObserverSend;
      obs.channel = channel;
      obs.at = at;
      obs.message = message;
      lane->current->effects.push_back(std::move(obs));
    }
    Effect flight;
    flight.kind = Effect::Kind::kSendFlight;
    flight.channel = channel;
    lane->current->effects.push_back(std::move(flight));
  } else {
    if (observer_ != nullptr) observer_->on_send(at, channel, message);
    ++channel_in_flight_[channel.value()];
    metrics_.observe_backlog(channel.value(),
                             channel_in_flight_[channel.value()]);
  }

  if (config_.faults) {
    // Lossy transport: stage in the retransmit window, then subject the
    // first physical transmission attempt to the fault plan.  In-order
    // release is the receiver's job, so no FIFO floor here.
    const std::uint64_t seq = rel_send_[channel.value()].stage(
        std::move(message), wire_bytes, at);
    transmit_frame(lane, at, channel, seq);
    schedule_retry_check(lane, at, channel);
    return;
  }

  // Latency is drawn from a stateless per-message stream keyed by
  // (seed, channel, per-channel sequence number) rather than a shared
  // generator.  Two runs that execute identical prefixes therefore see
  // identical delays for the shared prefix even if they diverge later —
  // the property the S_h == S_r equivalence experiment rests on.
  const std::uint64_t seq = channel_send_seq_[channel.value()]++;
  const Duration delay = sample_latency(channel, seq);
  TimePoint deliver_at = at + delay;
  // FIFO enforcement: never deliver before a previously sent message on the
  // same channel.
  TimePoint& clear_time = channel_clear_time_[channel.value()];
  if (deliver_at < clear_time) deliver_at = clear_time;
  clear_time = deliver_at;

  auto event = std::make_unique<Event>();
  event->when = deliver_at;
  event->kind = Event::Kind::kDeliver;
  event->target = spec.destination;
  event->channel = channel;
  event->message = std::move(message);
  event->wire_bytes = wire_bytes;
  emit_child(lane, std::move(event));
}

Duration Simulation::sample_latency(ChannelId channel, std::uint64_t key) {
  Rng latency_rng(config_.seed ^
                  (static_cast<std::uint64_t>(channel.value()) + 1) *
                      0x9e3779b97f4a7c15ULL ^
                  (key + 1) * 0xc2b2ae3d27d4eb4fULL);
  const Duration delay = config_.latency->sample(channel, latency_rng);
  DDBG_ASSERT(delay.ns >= 0, "latency must be non-negative");
  return delay;
}

void Simulation::transmit_frame(Lane* lane, TimePoint at, ChannelId channel,
                                std::uint64_t seq) {
  const std::size_t c = channel.value();
  const ReliableSender::Staged* staged = rel_send_[c].peek(seq);
  if (staged == nullptr) return;  // acked while a retry was queued
  const std::uint64_t attempt = channel_attempts_[c]++;
  const FaultDecision fault = config_.faults->decide(channel, attempt);
  Duration delay = sample_latency(channel, attempt);

  switch (fault.kind) {
    case FaultKind::kDrop:
    case FaultKind::kPartition:
      metrics_.on_fault(fault_index(fault.kind));
      return;  // frame vanishes; the retransmit timer recovers
    case FaultKind::kReset: {
      metrics_.on_fault(fault_index(fault.kind));
      metrics_.on_channel_down();
      // The frame is lost with the connection.  Model reconnection as a
      // delayed resync: once the channel is back, every unacked frame is
      // replayed (at most one reconnect in flight per channel).  The
      // resync is sender-side work, so it rides a kRelRestore event
      // targeting the channel source — never a serial barrier.
      if (reconnect_pending_[c] != 0) return;
      reconnect_pending_[c] = 1;
      auto restore = std::make_unique<Event>();
      restore->when = at + config_.reliable.rto_initial;
      restore->kind = Event::Kind::kRelRestore;
      restore->target = topology_.channel(channel).source;
      restore->channel = channel;
      emit_child(lane, std::move(restore));
      return;
    }
    case FaultKind::kDuplicate: {
      metrics_.on_fault(fault_index(fault.kind));
      // Second copy rides a delay drawn from the ack stream's key space so
      // it is independent of (and often overtakes) the first.
      const Duration dup_delay =
          sample_latency(channel, attempt ^ 0x8000000000000000ULL);
      auto dup = std::make_unique<Event>();
      dup->when = at + dup_delay;
      dup->kind = Event::Kind::kRelFrame;
      dup->target = topology_.channel(channel).destination;
      dup->channel = channel;
      dup->rel_seq = seq;
      dup->message = staged->message;
      dup->wire_bytes = static_cast<std::uint32_t>(staged->meta);
      emit_child(lane, std::move(dup));
      break;
    }
    case FaultKind::kReorder:
    case FaultKind::kDelay:
      metrics_.on_fault(fault_index(fault.kind));
      delay = delay + fault.extra_delay;
      break;
    case FaultKind::kNone:
      break;
  }

  auto event = std::make_unique<Event>();
  event->when = at + delay;
  event->kind = Event::Kind::kRelFrame;
  event->target = topology_.channel(channel).destination;
  event->channel = channel;
  event->rel_seq = seq;
  event->message = staged->message;
  event->wire_bytes = static_cast<std::uint32_t>(staged->meta);
  emit_child(lane, std::move(event));
}

void Simulation::schedule_retry_check(Lane* lane, TimePoint at,
                                      ChannelId channel) {
  const std::size_t c = channel.value();
  if (retry_pending_[c] != 0) return;
  const auto deadline = rel_send_[c].next_deadline();
  if (!deadline.has_value()) return;
  retry_pending_[c] = 1;
  auto event = std::make_unique<Event>();
  event->when = *deadline < at ? at : *deadline;
  event->kind = Event::Kind::kRelRetry;
  event->target = topology_.channel(channel).source;
  event->channel = channel;
  emit_child(lane, std::move(event));
}

void Simulation::check_retries(Lane* lane, TimePoint at, ChannelId channel) {
  const std::size_t c = channel.value();
  for (const std::uint64_t seq : rel_send_[c].due(at)) {
    metrics_.on_retransmit();
    transmit_frame(lane, at, channel, seq);
  }
  schedule_retry_check(lane, at, channel);
}

void Simulation::send_ack(Lane* lane, TimePoint at, ChannelId channel) {
  const std::size_t c = channel.value();
  const std::uint64_t attempt = channel_ack_attempts_[c]++;
  const FaultDecision fault = config_.faults->decide_ack(channel, attempt);
  if (fault.kind == FaultKind::kDrop) {
    metrics_.on_fault(fault_index(fault.kind));
    return;  // a later (re)transmission elicits a fresh ack
  }
  Duration delay =
      sample_latency(channel, attempt ^ 0x4000000000000000ULL);
  if (fault.kind == FaultKind::kDelay) {
    metrics_.on_fault(fault_index(fault.kind));
    delay = delay + fault.extra_delay;
  }
  auto event = std::make_unique<Event>();
  event->when = at + delay;
  event->kind = Event::Kind::kRelAck;
  event->target = topology_.channel(channel).source;
  event->channel = channel;
  event->rel_seq = rel_recv_[c].cum_ack();
  emit_child(lane, std::move(event));
}

void Simulation::on_rel_frame(Lane* lane, Event& event) {
  const std::size_t c = event.channel.value();
  std::vector<ReliableReceiver::Delivery> released;
  const auto accept = rel_recv_[c].on_frame(
      event.rel_seq, std::move(event.message), event.wire_bytes, released);
  if (accept == ReliableReceiver::Accept::kDuplicate) {
    metrics_.on_dup_suppressed();
  }
  for (auto& delivery : released) {
    release_delivery(lane, event.when, event.channel, event.target,
                     std::move(delivery.message),
                     static_cast<std::uint32_t>(delivery.meta));
  }
  // Ack every arrival, duplicates included: a re-ack is what stops the
  // sender retransmitting a frame whose ack was lost.
  send_ack(lane, event.when, event.channel);
}

void Simulation::release_delivery(Lane* lane, TimePoint at, ChannelId channel,
                                  ProcessId target, Message message,
                                  std::uint32_t wire_bytes) {
  const std::size_t c = channel.value();
  metrics_.on_deliver(c, traffic_class(message.kind), wire_bytes);
  metrics_.on_deliver_batch(1);
  if (lane != nullptr && lane->current != nullptr) {
    Effect flight;
    flight.kind = Effect::Kind::kDeliverFlight;
    flight.channel = channel;
    lane->current->effects.push_back(std::move(flight));
    if (observer_ != nullptr) {
      Effect obs;
      obs.kind = Effect::Kind::kObserverDeliver;
      obs.channel = channel;
      obs.at = at;
      obs.message = message;
      lane->current->effects.push_back(std::move(obs));
    }
  } else {
    DDBG_ASSERT(channel_in_flight_[c] > 0, "release without a send");
    --channel_in_flight_[c];
    if (observer_ != nullptr) observer_->on_deliver(at, channel, message);
  }
  auto& ctx = static_cast<SimProcessContext&>(*contexts_[target.value()]);
  ctx.bind_dispatch(at, lane);
  processes_[target.value()]->on_message(ctx, channel, std::move(message));
}

TimerId Simulation::do_set_timer(Lane* lane, ProcessId owner, TimePoint at,
                                 Duration delay) {
  DDBG_ASSERT(delay.ns >= 0, "timer delay must be non-negative");
  // Timer ids are per-process streams packed as (owner << 20 | seq): like
  // transport message ids, they depend only on the owner's own call order,
  // never on the global interleaving.
  DDBG_ASSERT(owner.value() < (1u << 12) - 1, "too many processes for "
              "packed timer ids");
  const std::uint32_t seq = ++process_timer_seq_[owner.value()];
  DDBG_ASSERT(seq < (1u << 20), "per-process timer stream exhausted");
  const TimerId id((owner.value() << 20) | seq);
  auto event = std::make_unique<Event>();
  event->when = at + delay;
  event->kind = Event::Kind::kTimer;
  event->target = owner;
  event->timer = id;
  emit_child(lane, std::move(event));
  return id;
}

}  // namespace ddbg
