// Local events: the observable occurrences breakpoint predicates range over.
//
// Section 3.2 of the paper enumerates the Simple Predicate vocabulary:
// "entering a particular procedure ... a message sent or received, a channel
// created or destroyed, or a process created or terminated".  The debug shim
// turns each such occurrence into a LocalEvent, stamps it with Lamport and
// vector clocks, feeds it to the Linked-Predicate detector, and (optionally)
// appends it to an analysis trace.
#pragma once

#include <cstdint>
#include <string>

#include "clock/vector_clock.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace ddbg {

enum class LocalEventKind : std::uint8_t {
  kUserEvent = 0,      // named application event (EDL-style abstract event)
  kProcedureEntered,   // "stop when procedure X is entered"
  kStateChange,        // watched variable assigned (carries the new value)
  kMessageSent,
  kMessageReceived,
  kProcessStarted,
  kProcessTerminated,
  kChannelCreated,
  kChannelDestroyed,
};

[[nodiscard]] constexpr const char* to_string(LocalEventKind kind) {
  switch (kind) {
    case LocalEventKind::kUserEvent: return "user_event";
    case LocalEventKind::kProcedureEntered: return "procedure_entered";
    case LocalEventKind::kStateChange: return "state_change";
    case LocalEventKind::kMessageSent: return "message_sent";
    case LocalEventKind::kMessageReceived: return "message_received";
    case LocalEventKind::kProcessStarted: return "process_started";
    case LocalEventKind::kProcessTerminated: return "process_terminated";
    case LocalEventKind::kChannelCreated: return "channel_created";
    case LocalEventKind::kChannelDestroyed: return "channel_destroyed";
  }
  return "?";
}

struct LocalEvent {
  LocalEventKind kind = LocalEventKind::kUserEvent;
  ProcessId process;
  // Event/procedure/variable name, depending on kind.  Empty otherwise.
  std::string name;
  // Variable value for kStateChange, user value for kUserEvent,
  // payload size for message events.
  std::int64_t value = 0;
  // Channel for message/channel events.
  ChannelId channel;
  // message_id of the message for send/receive events (pairs them up).
  std::uint64_t message_id = 0;

  // Instrumentation stamps (assigned by the debug shim).
  std::uint64_t lamport = 0;
  VectorClock vclock;
  TimePoint when{};
  // Per-process sequence number: position in this process's local order.
  std::uint64_t local_seq = 0;

  [[nodiscard]] std::string describe() const;
};

}  // namespace ddbg
