#include "core/halting.hpp"

#include "common/logging.hpp"

namespace ddbg {

HaltingEngine::HaltingEngine(ProcessId self, const Topology* topology,
                             Callbacks callbacks)
    : self_(self), topology_(topology), callbacks_(std::move(callbacks)) {
  DDBG_ASSERT(topology_ != nullptr, "HaltingEngine needs a topology");
  DDBG_ASSERT(callbacks_.capture_state != nullptr,
              "HaltingEngine needs a capture_state callback");
}

bool HaltingEngine::is_app_channel(ChannelId c) const {
  return !topology_->channel(c).is_control;
}

void HaltingEngine::initiate(ProcessContext& ctx) {
  if (halted_) return;  // a process can halt only once per wave
  // Marker-Sending Rule: increment last_halt_id, then Halt Routine.
  ++last_halt_id_;
  snapshot_ = callbacks_.capture_state();
  snapshot_.halt_path.clear();  // spontaneous: nobody halted before us
  halt_routine(ctx);
}

void HaltingEngine::on_halt_marker(ProcessContext& ctx, ChannelId in,
                                   const HaltMarkerData& data) {
  if (data.halt_id.value() > last_halt_id_) {
    // New wave: adopt its id and halt.
    last_halt_id_ = data.halt_id.value();
    if (halted_) {
      // Overlapping waves: a second initiator raced the first.  We are
      // already halted, so the Halt Routine must not run again (it would
      // re-enter the halted state illegally); adopt the newer wave in
      // place instead.
      adopt_wave(ctx, data);
    } else {
      snapshot_ = callbacks_.capture_state();
      snapshot_.halt_path = data.halt_path;
      halt_routine(ctx);
    }
    // The channel the first marker arrived on is empty (the sender halted
    // immediately after sending it): mark it done with no recorded messages.
    channels_done_.insert(in);
    check_complete();
    return;
  }
  if (halted_ && data.halt_id.value() == last_halt_id_) {
    // Another marker of the current wave: this channel's state is complete.
    channels_done_.insert(in);
    check_complete();
    return;
  }
  // Marker for an older wave (or for the current id while running, which
  // cannot happen with per-wave ids): ignore, per the Marker-Receiving Rule.
}

void HaltingEngine::adopt_wave(ProcessContext& ctx,
                               const HaltMarkerData& data) {
  // Already halted when a newer wave's marker arrives.  The process state
  // is unchanged — it was captured when we halted and nothing has run
  // since — so it stands for the new wave too; only the wave bookkeeping
  // restarts.  Everything buffered while halted is still logically in its
  // channel, so it seeds the new wave's channel-state records (Lemma 2.2:
  // those messages arrive before the new wave's markers).
  completion_reported_ = false;
  channels_done_.clear();
  snapshot_.halt_path = data.halt_path;
  snapshot_.captured_at = ctx.now();
  for (ChannelState& state : snapshot_.in_channels) state.messages.clear();
  for (const auto& [channel, message] : buffered_) {
    if (message.kind != MessageKind::kApplication) continue;
    const std::size_t slot = channel.value() < channel_slot_.size()
                                 ? channel_slot_[channel.value()]
                                 : SIZE_MAX;
    if (slot != SIZE_MAX) {
      snapshot_.in_channels[slot].messages.push_back(message.payload);
    }
  }
  // Forward the new wave's markers exactly as the Halt Routine would,
  // extending the halt path with our own name (section 2.2.4).
  std::vector<ProcessId> path = data.halt_path;
  path.push_back(self_);
  for (const ChannelId c : topology_->out_channels(self_)) {
    ctx.send(c, Message::halt_marker(HaltId(last_halt_id_), path));
  }
  if (callbacks_.on_halt) {
    callbacks_.on_halt(HaltId(last_halt_id_), snapshot_.halt_path);
  }
}

void HaltingEngine::halt_routine(ProcessContext& ctx) {
  DDBG_ASSERT(!halted_, "halt routine entered twice");
  halted_ = true;
  completion_reported_ = false;
  channels_done_.clear();
  buffered_.clear();
  buffered_timers_.clear();

  snapshot_.captured_at = ctx.now();

  // Prepare per-incoming-application-channel state slots.
  snapshot_.in_channels.clear();
  channel_slot_.assign(topology_->num_channels(), SIZE_MAX);
  for (const ChannelId c : topology_->in_channels(self_)) {
    if (!is_app_channel(c)) continue;
    channel_slot_[c.value()] = snapshot_.in_channels.size();
    snapshot_.in_channels.push_back(ChannelState{c, {}});
  }

  // Forward markers on every outgoing channel, appending our own name to
  // the halt path (section 2.2.4), then halt.
  std::vector<ProcessId> path = snapshot_.halt_path;
  path.push_back(self_);
  for (const ChannelId c : topology_->out_channels(self_)) {
    ctx.send(c, Message::halt_marker(HaltId(last_halt_id_), path));
  }

  if (callbacks_.on_halt) {
    callbacks_.on_halt(HaltId(last_halt_id_), snapshot_.halt_path);
  }
  check_complete();  // a process with no incoming app/control channels
}

bool HaltingEngine::complete() const {
  if (!halted_) return false;
  for (const ChannelId c : topology_->in_channels(self_)) {
    if (!channels_done_.contains(c)) return false;
  }
  return true;
}

void HaltingEngine::check_complete() {
  if (completion_reported_ || !complete()) return;
  completion_reported_ = true;
  if (callbacks_.on_complete) callbacks_.on_complete(snapshot_);
}

bool HaltingEngine::intercept_message(ChannelId in, const Message& message) {
  if (!halted_) return false;
  DDBG_ASSERT(message.kind != MessageKind::kControl,
              "control messages must bypass the halting engine");
  // Everything that arrives while halted stays logically in the channel and
  // is replayed on resume.
  buffered_.emplace_back(in, message);
  // Application messages arriving before this channel's marker are part of
  // the channel's recorded state (Lemma 2.2).
  if (message.kind == MessageKind::kApplication &&
      !channels_done_.contains(in)) {
    const std::size_t slot =
        in.value() < channel_slot_.size() ? channel_slot_[in.value()]
                                          : SIZE_MAX;
    if (slot != SIZE_MAX) {
      snapshot_.in_channels[slot].messages.push_back(message.payload);
    }
  }
  return true;
}

bool HaltingEngine::intercept_timer(TimerId timer) {
  if (!halted_) return false;
  buffered_timers_.push_back(timer);
  return true;
}

HaltingEngine::ResumeData HaltingEngine::resume() {
  DDBG_ASSERT(halted_, "resume() while running");
  ResumeData data;
  data.messages = std::move(buffered_);
  data.timers = std::move(buffered_timers_);
  buffered_.clear();
  buffered_timers_.clear();
  halted_ = false;
  completion_reported_ = false;
  channels_done_.clear();
  snapshot_ = ProcessSnapshot{};
  return data;
}

const ProcessSnapshot& HaltingEngine::snapshot() const {
  DDBG_ASSERT(halted_, "snapshot() while running");
  return snapshot_;
}

}  // namespace ddbg
