#include "core/halting.hpp"

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

HaltingEngine::HaltingEngine(ProcessId self, const Topology* topology,
                             Callbacks callbacks, bool suppress_control_echo)
    : self_(self),
      topology_(topology),
      callbacks_(std::move(callbacks)),
      suppress_control_echo_(suppress_control_echo) {
  DDBG_ASSERT(topology_ != nullptr, "HaltingEngine needs a topology");
  DDBG_ASSERT(callbacks_.capture_state != nullptr,
              "HaltingEngine needs a capture_state callback");
}

bool HaltingEngine::is_app_channel(ChannelId c) const {
  return !topology_->channel(c).is_control;
}

void HaltingEngine::record_channel_message(ChannelId in,
                                           const Bytes& payload) {
  const auto [it, inserted] =
      channel_slot_.try_emplace(in.value(), snapshot_.in_channels.size());
  if (inserted) snapshot_.in_channels.push_back(ChannelState{in, {}});
  snapshot_.in_channels[it->second].messages.push_back(payload);
}

void HaltingEngine::initiate(ProcessContext& ctx) {
  if (halted_) return;  // a process can halt only once per wave
  // Marker-Sending Rule: increment last_halt_id, then Halt Routine.
  ++last_halt_id_;
  snapshot_ = callbacks_.capture_state();
  snapshot_.halt_path.clear();  // spontaneous: nobody halted before us
  halt_routine(ctx, /*from_control=*/false);
}

void HaltingEngine::on_halt_marker(ProcessContext& ctx, ChannelId in,
                                   const HaltMarkerData& data) {
  const bool from_control = !is_app_channel(in);
  if (data.halt_id.value() > last_halt_id_) {
    // New wave: adopt its id and halt.
    last_halt_id_ = data.halt_id.value();
    if (halted_) {
      // Overlapping waves: a second initiator raced the first.  We are
      // already halted, so the Halt Routine must not run again (it would
      // re-enter the halted state illegally); adopt the newer wave in
      // place instead.
      adopt_wave(ctx, data, from_control);
    } else {
      snapshot_ = callbacks_.capture_state();
      snapshot_.halt_path = data.halt_path;
      halt_routine(ctx, from_control);
    }
    // The channel the first marker arrived on is empty (the sender halted
    // immediately after sending it): mark it done with no recorded messages.
    channels_done_.insert(in);
    check_complete();
    return;
  }
  if (halted_ && data.halt_id.value() == last_halt_id_) {
    // Another marker of the current wave: this channel's state is complete.
    channels_done_.insert(in);
    check_complete();
    return;
  }
  // Marker for an older wave (or for the current id while running, which
  // cannot happen with per-wave ids): ignore, per the Marker-Receiving Rule.
}

void HaltingEngine::adopt_wave(ProcessContext& ctx,
                               const HaltMarkerData& data, bool from_control) {
  // Already halted when a newer wave's marker arrives.  The process state
  // is unchanged — it was captured when we halted and nothing has run
  // since — so it stands for the new wave too; only the wave bookkeeping
  // restarts.  Everything buffered while halted is still logically in its
  // channel, so it seeds the new wave's channel-state records (Lemma 2.2:
  // those messages arrive before the new wave's markers).
  completion_reported_ = false;
  channels_done_.clear();
  snapshot_.halt_path = data.halt_path;
  snapshot_.captured_at = ctx.now();
  snapshot_.in_channels.clear();
  channel_slot_.clear();
  for (const auto& [channel, message] : buffered_) {
    if (message.kind != MessageKind::kApplication) continue;
    if (!is_app_channel(channel)) continue;
    record_channel_message(channel, message.payload);
  }
  // Forward the new wave's markers exactly as the Halt Routine would,
  // extending the halt path with our own name (section 2.2.4).
  forward_markers(ctx, data.halt_path, from_control);
  if (callbacks_.on_halt) {
    callbacks_.on_halt(HaltId(last_halt_id_), snapshot_.halt_path);
  }
}

void HaltingEngine::halt_routine(ProcessContext& ctx, bool from_control) {
  DDBG_ASSERT(!halted_, "halt routine entered twice");
  halted_ = true;
  completion_reported_ = false;
  channels_done_.clear();
  buffered_.clear();
  buffered_timers_.clear();

  snapshot_.captured_at = ctx.now();

  // Channel-state slots are created lazily on the first recorded payload
  // (sparse: an empty channel never materializes an entry).
  snapshot_.in_channels.clear();
  channel_slot_.clear();

  // Forward markers on every outgoing channel, appending our own name to
  // the halt path (section 2.2.4), then halt.
  forward_markers(ctx, snapshot_.halt_path, from_control);

  if (callbacks_.on_halt) {
    callbacks_.on_halt(HaltId(last_halt_id_), snapshot_.halt_path);
  }
  check_complete();  // a process with no incoming app/control channels
}

void HaltingEngine::forward_markers(ProcessContext& ctx,
                                    const std::vector<ProcessId>& base_path,
                                    bool from_control) {
  std::vector<ProcessId> path = base_path;
  path.push_back(self_);
  for (const ChannelId c : topology_->out_channels(self_)) {
    // Markers on application channels are load-bearing (the receiver closes
    // that channel's state on them); only the echo back to the debugger
    // tier is redundant, and only when the tier told us about the wave.
    if (suppress_control_echo_ && from_control && !is_app_channel(c)) {
      if (obs::MetricsRegistry* m = ctx.metrics()) m->on_marker_suppressed();
      continue;
    }
    ctx.send(c, Message::halt_marker(HaltId(last_halt_id_), path));
  }
}

bool HaltingEngine::complete() const {
  if (!halted_) return false;
  for (const ChannelId c : topology_->in_channels(self_)) {
    if (!channels_done_.contains(c)) return false;
  }
  return true;
}

void HaltingEngine::check_complete() {
  if (completion_reported_ || !complete()) return;
  completion_reported_ = true;
  if (callbacks_.on_complete) callbacks_.on_complete(snapshot_);
}

bool HaltingEngine::intercept_message(ChannelId in, const Message& message) {
  if (!halted_) return false;
  DDBG_ASSERT(message.kind != MessageKind::kControl,
              "control messages must bypass the halting engine");
  // Everything that arrives while halted stays logically in the channel and
  // is replayed on resume.
  buffered_.emplace_back(in, message);
  // Application messages arriving before this channel's marker are part of
  // the channel's recorded state (Lemma 2.2).
  if (message.kind == MessageKind::kApplication &&
      !channels_done_.contains(in) && is_app_channel(in)) {
    record_channel_message(in, message.payload);
  }
  return true;
}

bool HaltingEngine::intercept_timer(TimerId timer) {
  if (!halted_) return false;
  buffered_timers_.push_back(timer);
  return true;
}

HaltingEngine::ResumeData HaltingEngine::resume() {
  DDBG_ASSERT(halted_, "resume() while running");
  ResumeData data;
  data.messages = std::move(buffered_);
  data.timers = std::move(buffered_timers_);
  buffered_.clear();
  buffered_timers_.clear();
  halted_ = false;
  completion_reported_ = false;
  channels_done_.clear();
  channel_slot_.clear();
  snapshot_ = ProcessSnapshot{};
  return data;
}

const ProcessSnapshot& HaltingEngine::snapshot() const {
  DDBG_ASSERT(halted_, "snapshot() while running");
  return snapshot_;
}

}  // namespace ddbg
