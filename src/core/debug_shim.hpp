// DebugShim: the per-process debugging agent.
//
// The shim wraps a user Process and interposes on everything that crosses
// the process boundary:
//
//   * outgoing application messages are stamped with Lamport/vector clocks
//     and generate kMessageSent events;
//   * incoming traffic is dispatched by kind — halt markers to the
//     HaltingEngine, snapshot markers to the SnapshotEngine, predicate
//     markers to the LinkedPredicateDetector, control commands to the
//     command handler, and application messages to the user process;
//   * DebugApi calls from the user code generate the remaining local
//     events.
//
// Every local event is offered to the LP detector and to an optional trace
// sink (analysis).  Detector effects (forwarding predicate markers,
// initiating halting) are deferred to the end of the current handler so a
// halting process's halt markers are the *last* messages it sends — the
// property Lemma 2.2's channel-state argument rests on.
//
// While halted the shim consumes only control traffic; application-era
// messages are buffered by the halting engine as channel state and replayed
// (re-dispatched through the same paths) on resume.
//
// The engines are constructed in on_start, bound to the topology owned by
// the running Simulation/Runtime (the one ctx.topology() returns), so the
// shim never holds a pointer into caller-owned temporaries.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "clock/lamport.hpp"
#include "clock/vector_clock.hpp"
#include "common/ids.hpp"
#include "core/commands.hpp"
#include "core/debug_api.hpp"
#include "core/halting.hpp"
#include "core/lp_detector.hpp"
#include "core/snapshot.hpp"
#include "net/process.hpp"
#include "net/replay_hooks.hpp"

namespace ddbg {

class DebugShim final : public Process, public DebugApi {
 public:
  struct Options {
    // Stamp vector clocks on outgoing application messages (instrumentation
    // used by the analysis layer; off measures the lean configuration).
    bool stamp_vector_clocks = true;
    // Always route predicate markers through the debugger process instead
    // of using direct application channels when they exist.  Ablation knob
    // for the routing design decision (see DESIGN.md / bench_ablation).
    bool route_markers_via_debugger = false;
    // Skip the redundant halt/snapshot marker echo back onto control
    // out-channels when the wave was learned *from* a control channel (the
    // debugger tier demonstrably knows it already).  Markers on application
    // channels are never suppressed — they close the receiver's channel
    // state (Lemma 2.2).  Off reproduces the plain flood for equivalence
    // testing.
    bool suppress_redundant_markers = true;
    // Invoked for every local event (analysis trace).
    std::function<void(const LocalEvent&)> trace_sink;
    // Invoked when this process halts / resumes (tests, experiments).
    std::function<void(HaltId)> on_halted;
    std::function<void(HaltId)> on_resumed;
    // Invoked (on this process's thread) whenever a breakpoint watch is
    // armed here — via an arm command or a forwarded predicate marker.  On
    // the threaded runtimes it may fire concurrently from different process
    // threads; tests use it to synchronize with asynchronous arming instead
    // of sleeping.
    std::function<void(ProcessId, BreakpointId)> on_armed;
    // Completed local contributions, also delivered locally (used by tests
    // and by topologies without a debugger process).
    std::function<void(ProcessId, std::uint64_t wave, const ProcessSnapshot&)>
        local_halt_report;
    std::function<void(ProcessId, std::uint64_t wave, const ProcessSnapshot&)>
        local_snapshot_report;
    // Record mode (src/replay): when set, the shim records every input its
    // user process is a function of — each application delivery (channel +
    // per-channel ordinal + payload hash, at the moment it reaches the user
    // handler), each timer creation (with the substrate's TimerId) and each
    // timer firing.  Null keeps the record-off paths byte-identical.
    ReplaySink* replay_record = nullptr;
    // Replay gate mode (ReplayDriver): application deliveries are held in a
    // FIFO gate until the driver releases them in logged order via
    // replay_release(); timers never reach the substrate and fire only via
    // replay_fire_timer().  At halt entry the gate drains into the halting
    // engine so the backlog is recorded as channel state — exactly the
    // messages the original cut had in its channels.
    bool replay_gate = false;
  };

  DebugShim(ProcessId self, ProcessPtr user, Options options);
  DebugShim(ProcessId self, ProcessPtr user);
  ~DebugShim() override;

  // ---- Process ----
  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;
  [[nodiscard]] Bytes snapshot_state() const override {
    return user_->snapshot_state();
  }
  [[nodiscard]] std::string describe_state() const override {
    return user_->describe_state();
  }
  bool restore_state(const Bytes& state) override {
    return user_->restore_state(state);
  }

  // ---- DebugApi (called by the user process mid-handler) ----
  void event(std::string_view name, std::int64_t value) override;
  void enter_procedure(std::string_view name) override;
  void set_var(std::string_view name, std::int64_t value) override;
  using DebugApi::event;

  // ---- introspection (tests / debugger queries) ----
  [[nodiscard]] bool halted() const {
    return halting_.has_value() && halting_->halted();
  }
  [[nodiscard]] const HaltingEngine& halting() const { return *halting_; }
  [[nodiscard]] const SnapshotEngine& snapshot_engine() const {
    return *snapshot_;
  }
  [[nodiscard]] Process& user() { return *user_; }
  [[nodiscard]] std::int64_t var(const std::string& name) const;
  [[nodiscard]] std::size_t armed_watches() const {
    return detector_.num_watches();
  }

  // Programmatic halting initiation (a spontaneous decision to halt); used
  // by tests and by the basic-model experiments without a debugger.
  void initiate_halt(ProcessContext& ctx);
  // Programmatic C&L recording initiation.
  void initiate_snapshot(ProcessContext& ctx);

  // ---- replay gate (ReplayDriver; requires Options::replay_gate) ----
  // Gated (arrived, not yet released) application messages on `in`.
  [[nodiscard]] std::size_t replay_gate_depth(ChannelId in) const;
  [[nodiscard]] std::size_t replay_gate_total() const { return gate_.size(); }
  // Seed the TimerIds the recorded run's substrate returned, indexed by
  // creation ordinal, so replayed set_timer calls hand back the same ids.
  void replay_preload_timer_ids(std::vector<TimerId> ids);
  // Release the next gated message on `in` to the user process.  `ordinal`
  // and `expected_hash` come from the log's Deliver record; a mismatch
  // counts a divergence (the message is still delivered — replay keeps
  // going so the divergence report covers the whole run).  Returns false
  // if nothing is gated on `in`.
  bool replay_release(ProcessContext& ctx, ChannelId in, std::uint64_t ordinal,
                      std::uint64_t expected_hash);
  // Fire the timer created as this process's `ordinal`-th.  Returns false
  // (and counts a divergence) if no such timer exists or it was cancelled.
  bool replay_fire_timer(ProcessContext& ctx, std::uint64_t ordinal);
  // Deliveries handed to the user process so far (record + replay modes).
  [[nodiscard]] std::uint64_t replay_deliveries(ChannelId in) const;

 private:
  class ShimContext;

  // Pending detector effects, flushed at end of handler.
  struct PendingForward {
    ProcessId target;
    BreakpointId bp;
    LinkedPredicate rest;
    std::uint32_t stage_index;
    bool monitor;
  };
  struct PendingNotify {
    BreakpointId bp;
    std::uint32_t term_index;
  };
  struct PendingTrigger {
    BreakpointId bp;
    std::string description;
    bool monitor;
  };

  void dispatch(ProcessContext& ctx, ChannelId in, Message message);
  void handle_control(ProcessContext& ctx, const Command& command);
  void emit_event(LocalEvent event);
  // Routes an Options callback through the context's run_ordered so that
  // externally observable notifications keep a total, mode-independent
  // order (the parallel simulator defers them to window commit).
  void notify_ordered(std::function<void()> fn);
  void flush_pending(ProcessContext& ctx);
  void send_to_debugger(ProcessContext& ctx, const Command& command);
  [[nodiscard]] ProcessSnapshot capture_state() const;
  void do_resume(ProcessContext& ctx, std::uint64_t wave);
  [[nodiscard]] std::uint64_t next_message_id();
  void bind(ProcessContext& ctx);
  // set_timer/cancel_timer interposition (recording + replay gating).
  TimerId interpose_set_timer(ProcessContext& outer, Duration delay);
  void interpose_cancel_timer(ProcessContext& outer, TimerId timer);
  // Records the firing (record mode) and runs the user timer handler.
  void fire_user_timer(TimerId timer);
  // Drains the replay gate into the halting engine at halt entry.
  void maybe_flush_gate();

  ProcessId self_;
  const Topology* topology_ = nullptr;  // bound in on_start
  ProcessPtr user_;
  Options options_;

  std::optional<HaltingEngine> halting_;
  std::optional<SnapshotEngine> snapshot_;
  LinkedPredicateDetector detector_;
  std::unique_ptr<ShimContext> shim_ctx_;

  LamportClock lamport_;
  VectorClock vclock_;
  std::uint64_t local_seq_ = 0;
  std::uint64_t send_counter_ = 0;
  std::unordered_map<std::string, std::int64_t> vars_;

  // Valid while inside a handler; used by DebugApi calls and deferred work.
  ProcessContext* current_ctx_ = nullptr;

  std::vector<PendingForward> pending_forwards_;
  std::vector<PendingNotify> pending_notifies_;
  std::vector<PendingTrigger> pending_triggers_;

  // ---- record/replay state ----
  // Per-channel count of application messages handed to the user handler;
  // the next delivery's ordinal in both record and replay modes.
  std::unordered_map<std::uint32_t, std::uint64_t> delivery_ordinals_;
  // Replay gate: arrived-but-unreleased application messages, in global
  // arrival order (per-channel FIFO is a consequence).
  std::deque<std::pair<ChannelId, Message>> gate_;
  bool gate_release_in_progress_ = false;
  std::uint64_t timers_created_ = 0;
  // Record mode: live substrate TimerId -> creation ordinal (erased on
  // fire/cancel so only pending timers stay mapped).
  std::unordered_map<std::uint32_t, std::uint64_t> timer_ordinal_by_id_;
  // Replay mode: creation ordinal -> TimerId handed back to the user
  // (scripted from the log, synthetic past the script's end).
  std::vector<TimerId> timer_script_;
  std::vector<TimerId> created_timers_;
  std::unordered_set<std::uint64_t> cancelled_timer_ordinals_;
};

// Convenience: wrap each user process in a shim.  The debugger process slot
// (topology.debugger_id(), if any) is not covered; append it separately.
[[nodiscard]] std::vector<ProcessPtr> wrap_in_shims(
    const Topology& topology, std::vector<ProcessPtr> users,
    DebugShim::Options options);
[[nodiscard]] std::vector<ProcessPtr> wrap_in_shims(
    const Topology& topology, std::vector<ProcessPtr> users);

}  // namespace ddbg
