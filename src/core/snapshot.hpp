// Chandy & Lamport's global-state recording algorithm (section 2.1 of the
// paper; originally C&L 1985), per-process engine.
//
//   Marker-Sending Rule for p: after p records its state, send one marker on
//   every outgoing channel before any further message.
//   Marker-Receiving Rule for q, marker on channel c:
//     if q has not recorded its state: record it; state(c) := empty
//     else: state(c) := messages received on c after recording, before the
//           marker.
//
// Unlike the Halting Algorithm, the process *continues executing* while the
// recording assembles — this is the "monitor-only" approach of section 4,
// and the baseline against which Theorem 2 equivalence (experiment E1) is
// checked.  Waves are numbered (snapshot_id) the same way halting waves
// are, so repeated recordings can be taken in one run.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "core/global_state.hpp"
#include "net/process.hpp"

namespace ddbg {

class SnapshotEngine {
 public:
  struct Callbacks {
    // Capture the application state at the recording instant.
    std::function<ProcessSnapshot()> capture_state;
    // All incoming channel states recorded: local contribution to S_r done.
    std::function<void(const ProcessSnapshot&)> on_complete;
  };

  // `suppress_control_echo`: as in HaltingEngine — when a wave was learned
  // from a control channel, skip the redundant marker echo back onto
  // control out-channels (never onto application channels).
  SnapshotEngine(ProcessId self, const Topology* topology,
                 Callbacks callbacks, bool suppress_control_echo = true);

  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] std::uint64_t last_snapshot_id() const {
    return last_snapshot_id_;
  }

  // Spontaneously start a recording wave (assigns the next id).
  void initiate(ProcessContext& ctx);

  // Marker-Receiving Rule.
  void on_marker(ProcessContext& ctx, ChannelId in,
                 const SnapshotMarkerData& data);

  // Every application message delivered to the process must also be offered
  // here so in-flight channel state can be recorded.  Never consumes the
  // message (the process keeps running).
  void observe_app_message(ChannelId in, const Message& message);

 private:
  void record_state(ProcessContext& ctx, bool from_control);
  void check_complete();
  [[nodiscard]] bool is_app_channel(ChannelId c) const;

  ProcessId self_;
  const Topology* topology_;
  Callbacks callbacks_;
  bool suppress_control_echo_ = true;

  std::uint64_t last_snapshot_id_ = 0;
  bool recording_ = false;

  ProcessSnapshot snapshot_;
  std::unordered_set<ChannelId> channels_done_;
  // Sparse index into snapshot_.in_channels (see HaltingEngine).
  std::unordered_map<std::uint32_t, std::size_t> channel_slot_;
};

}  // namespace ddbg
