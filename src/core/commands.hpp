// Debugger <-> process command protocol, carried as kControl messages over
// the control channels of the extended model (section 2.2.3).
//
// Control traffic is the debugger's own plumbing: it is always delivered,
// even to a halted process ("user processes are always willing to accept a
// message from the debugger process"), and it never appears in recorded
// channel states.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/serialization.hpp"
#include "core/global_state.hpp"

namespace ddbg {

enum class CommandKind : std::uint8_t {
  // debugger -> process
  kArmPredicate = 0,     // arm an LP stage (the debugger's Predicate-Marker-
                         // Sending Rule, and routed markers' final hop)
  kArmNotify = 1,        // unordered CP: report every satisfaction of an SP
  kDisarmBreakpoint = 2,
  kResume = 3,           // leave the halted state of wave halt_id
  kQueryState = 4,       // reply with a kStateReport

  // process -> debugger
  kHaltReport = 5,       // local contribution to S_h complete
  kSnapshotReport = 6,   // local contribution to S_r complete
  kBreakpointHit = 7,    // an LP completed at this process (halting follows)
  kNotifySatisfied = 8,  // unordered CP: one term was satisfied here
  kRouteMarker = 9,      // forward this predicate marker to `target`
  kStateReport = 10,

  // debugger tier (aggregator <-> aggregator/root); see with_debugger_tree()
  kAggregatedHaltReport = 11,      // merged subtree contribution to S_h
  kAggregatedSnapshotReport = 12,  // merged subtree contribution to S_r
  kTierBroadcast = 13,  // carry `inner` command to every user in the subtree
  kTierUnicast = 14,    // carry `inner` command to user `target` only
};

[[nodiscard]] constexpr const char* to_string(CommandKind kind) {
  switch (kind) {
    case CommandKind::kArmPredicate: return "arm_predicate";
    case CommandKind::kArmNotify: return "arm_notify";
    case CommandKind::kDisarmBreakpoint: return "disarm_breakpoint";
    case CommandKind::kResume: return "resume";
    case CommandKind::kQueryState: return "query_state";
    case CommandKind::kHaltReport: return "halt_report";
    case CommandKind::kSnapshotReport: return "snapshot_report";
    case CommandKind::kBreakpointHit: return "breakpoint_hit";
    case CommandKind::kNotifySatisfied: return "notify_satisfied";
    case CommandKind::kRouteMarker: return "route_marker";
    case CommandKind::kStateReport: return "state_report";
    case CommandKind::kAggregatedHaltReport: return "aggregated_halt_report";
    case CommandKind::kAggregatedSnapshotReport:
      return "aggregated_snapshot_report";
    case CommandKind::kTierBroadcast: return "tier_broadcast";
    case CommandKind::kTierUnicast: return "tier_unicast";
  }
  return "?";
}

struct Command {
  CommandKind kind = CommandKind::kQueryState;

  BreakpointId breakpoint;
  // kArmPredicate / kRouteMarker: encoded LinkedPredicate remainder.
  // kArmNotify: encoded SimplePredicate.
  Bytes predicate;
  std::uint32_t stage_index = 0;  // LP stages consumed so far / CP term idx
  // kArmPredicate / kRouteMarker: monitor-mode chain (record, don't halt).
  bool monitor = false;
  ProcessId target;               // kRouteMarker: final destination
  std::uint64_t wave_id = 0;      // halt or snapshot wave
  ProcessId reporter;             // process -> debugger commands
  std::optional<ProcessSnapshot> report;  // kHaltReport/kSnapshotReport/kStateReport
  std::string text;               // freeform description
  // kAggregated*Report: every user snapshot collected in the sender's
  // subtree, moved (never copied) up the convergecast path.
  std::vector<ProcessSnapshot> reports;
  // kTierBroadcast / kTierUnicast: the encoded command to deliver to the
  // destination user process(es).
  Bytes inner;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Command> decode(
      std::span<const std::uint8_t> data);

  // ---- constructors ----
  [[nodiscard]] static Command arm_predicate(BreakpointId bp, Bytes lp,
                                             std::uint32_t stage_index,
                                             bool monitor = false);
  [[nodiscard]] static Command arm_notify(BreakpointId bp, Bytes sp,
                                          std::uint32_t term_index);
  [[nodiscard]] static Command disarm(BreakpointId bp);
  [[nodiscard]] static Command resume(std::uint64_t halt_id);
  [[nodiscard]] static Command query_state();
  [[nodiscard]] static Command halt_report(ProcessId reporter,
                                           std::uint64_t halt_id,
                                           ProcessSnapshot snapshot);
  [[nodiscard]] static Command snapshot_report(ProcessId reporter,
                                               std::uint64_t snapshot_id,
                                               ProcessSnapshot snapshot);
  [[nodiscard]] static Command breakpoint_hit(ProcessId reporter,
                                              BreakpointId bp,
                                              std::string description);
  [[nodiscard]] static Command notify_satisfied(ProcessId reporter,
                                                BreakpointId bp,
                                                std::uint32_t term_index);
  [[nodiscard]] static Command route_marker(ProcessId reporter,
                                            ProcessId target, BreakpointId bp,
                                            Bytes lp,
                                            std::uint32_t stage_index,
                                            bool monitor = false);
  [[nodiscard]] static Command state_report(ProcessId reporter,
                                            ProcessSnapshot snapshot);
  [[nodiscard]] static Command aggregated_halt_report(
      ProcessId reporter, std::uint64_t halt_id,
      std::vector<ProcessSnapshot> snapshots);
  [[nodiscard]] static Command aggregated_snapshot_report(
      ProcessId reporter, std::uint64_t snapshot_id,
      std::vector<ProcessSnapshot> snapshots);
  [[nodiscard]] static Command tier_broadcast(Bytes inner);
  [[nodiscard]] static Command tier_unicast(ProcessId target, Bytes inner);
};

}  // namespace ddbg
