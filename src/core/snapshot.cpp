#include "core/snapshot.hpp"

#include "obs/metrics.hpp"

namespace ddbg {

SnapshotEngine::SnapshotEngine(ProcessId self, const Topology* topology,
                               Callbacks callbacks,
                               bool suppress_control_echo)
    : self_(self),
      topology_(topology),
      callbacks_(std::move(callbacks)),
      suppress_control_echo_(suppress_control_echo) {
  DDBG_ASSERT(topology_ != nullptr, "SnapshotEngine needs a topology");
  DDBG_ASSERT(callbacks_.capture_state != nullptr,
              "SnapshotEngine needs a capture_state callback");
}

bool SnapshotEngine::is_app_channel(ChannelId c) const {
  return !topology_->channel(c).is_control;
}

void SnapshotEngine::initiate(ProcessContext& ctx) {
  if (recording_) return;
  ++last_snapshot_id_;
  record_state(ctx, /*from_control=*/false);
  check_complete();
}

void SnapshotEngine::on_marker(ProcessContext& ctx, ChannelId in,
                               const SnapshotMarkerData& data) {
  if (data.snapshot_id > last_snapshot_id_) {
    // First marker of a new wave: record state; this channel is empty.
    last_snapshot_id_ = data.snapshot_id;
    record_state(ctx, /*from_control=*/!is_app_channel(in));
    channels_done_.insert(in);
    check_complete();
    return;
  }
  if (recording_ && data.snapshot_id == last_snapshot_id_) {
    channels_done_.insert(in);
    check_complete();
    return;
  }
  // Stale marker from a completed wave: ignore.
}

void SnapshotEngine::record_state(ProcessContext& ctx, bool from_control) {
  DDBG_ASSERT(!recording_, "record_state entered twice");
  recording_ = true;
  channels_done_.clear();

  snapshot_ = callbacks_.capture_state();
  snapshot_.halt_path.clear();  // recordings carry no halt path
  snapshot_.captured_at = ctx.now();

  // Channel-state slots are created lazily on the first observed in-flight
  // payload (sparse: an empty channel never materializes an entry).
  snapshot_.in_channels.clear();
  channel_slot_.clear();

  // Marker-Sending Rule: one marker per outgoing channel, before any
  // further message.  (This handler sends them immediately, so nothing can
  // be interleaved.)  Markers on application channels are load-bearing —
  // the receiver closes that channel's state on them — but the echo back
  // to the debugger tier is redundant when the tier started this wave.
  for (const ChannelId c : topology_->out_channels(self_)) {
    if (suppress_control_echo_ && from_control && !is_app_channel(c)) {
      if (obs::MetricsRegistry* m = ctx.metrics()) m->on_marker_suppressed();
      continue;
    }
    ctx.send(c, Message::snapshot_marker(last_snapshot_id_));
  }
}

void SnapshotEngine::observe_app_message(ChannelId in,
                                         const Message& message) {
  if (!recording_) return;
  if (message.kind != MessageKind::kApplication) return;
  if (channels_done_.contains(in)) return;
  if (!is_app_channel(in)) return;
  const auto [it, inserted] =
      channel_slot_.try_emplace(in.value(), snapshot_.in_channels.size());
  if (inserted) snapshot_.in_channels.push_back(ChannelState{in, {}});
  snapshot_.in_channels[it->second].messages.push_back(message.payload);
}

void SnapshotEngine::check_complete() {
  if (!recording_) return;
  for (const ChannelId c : topology_->in_channels(self_)) {
    if (!channels_done_.contains(c)) return;
  }
  recording_ = false;
  if (callbacks_.on_complete) callbacks_.on_complete(snapshot_);
}

}  // namespace ddbg
