// The instrumentation interface a debugged process uses to expose events
// and state to the debugger — the source of the paper's Simple Predicates
// ("entering a particular procedure", variable conditions like "i[j]=7",
// and EDL-style abstract events, cf. section 4).
//
// Application processes derive from Debuggable and call debug().event(...)/
// set_var(...)/enter_procedure(...) at interesting points.  When the
// process runs under a DebugShim these calls generate LocalEvents; when it
// runs bare (the uninstrumented baseline of experiment E7) they are no-ops.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/process.hpp"

namespace ddbg {

class DebugApi {
 public:
  virtual ~DebugApi() = default;

  // Named abstract event with an optional value.
  virtual void event(std::string_view name, std::int64_t value) = 0;
  void event(std::string_view name) { event(name, 0); }

  // "Stop when procedure X is entered."
  virtual void enter_procedure(std::string_view name) = 0;

  // Watched-variable assignment; generates a state-change event carrying
  // the new value (so predicates like `x == 7` fire on the transition).
  virtual void set_var(std::string_view name, std::int64_t value) = 0;
};

namespace detail {
class NullDebugApi final : public DebugApi {
 public:
  void event(std::string_view, std::int64_t) override {}
  void enter_procedure(std::string_view) override {}
  void set_var(std::string_view, std::int64_t) override {}
};
}  // namespace detail

class Debuggable : public Process {
 public:
  // Called by the DebugShim when it wraps this process.
  void attach_debug(DebugApi* api) { debug_api_ = api; }

 protected:
  [[nodiscard]] DebugApi& debug() {
    static detail::NullDebugApi null_api;
    return debug_api_ != nullptr ? *debug_api_ : null_api;
  }

 private:
  DebugApi* debug_api_ = nullptr;
};

}  // namespace ddbg
