#include "core/global_state.hpp"

#include <algorithm>
#include <sstream>

#include "common/result.hpp"

namespace ddbg {

void ProcessSnapshot::encode(ByteWriter& writer) const {
  writer.varint(process.value());
  writer.bytes(state);
  writer.str(description);
  writer.varint(in_channels.size());
  for (const ChannelState& cs : in_channels) {
    writer.varint(cs.channel.value());
    writer.varint(cs.messages.size());
    for (const Bytes& payload : cs.messages) writer.bytes(payload);
  }
  writer.varint(halt_path.size());
  for (const ProcessId p : halt_path) writer.varint(p.value());
  vclock.encode(writer);
  writer.i64(captured_at.ns);
}

Result<ProcessSnapshot> ProcessSnapshot::decode(ByteReader& reader) {
  ProcessSnapshot snap;
  auto process = reader.varint();
  if (!process.ok()) return process.error();
  snap.process = ProcessId(static_cast<std::uint32_t>(process.value()));

  auto state = reader.bytes();
  if (!state.ok()) return state.error();
  snap.state = std::move(state).value();

  auto description = reader.str();
  if (!description.ok()) return description.error();
  snap.description = std::move(description).value();

  auto num_channels = reader.count();
  if (!num_channels.ok()) return num_channels.error();
  snap.in_channels.reserve(num_channels.value());
  for (std::uint64_t i = 0; i < num_channels.value(); ++i) {
    ChannelState cs;
    auto channel = reader.varint();
    if (!channel.ok()) return channel.error();
    cs.channel = ChannelId(static_cast<std::uint32_t>(channel.value()));
    auto num_messages = reader.count();
    if (!num_messages.ok()) return num_messages.error();
    cs.messages.reserve(num_messages.value());
    for (std::uint64_t j = 0; j < num_messages.value(); ++j) {
      auto payload = reader.bytes();
      if (!payload.ok()) return payload.error();
      cs.messages.push_back(std::move(payload).value());
    }
    snap.in_channels.push_back(std::move(cs));
  }

  auto path_len = reader.count();
  if (!path_len.ok()) return path_len.error();
  snap.halt_path.reserve(path_len.value());
  for (std::uint64_t i = 0; i < path_len.value(); ++i) {
    auto p = reader.varint();
    if (!p.ok()) return p.error();
    snap.halt_path.push_back(ProcessId(static_cast<std::uint32_t>(p.value())));
  }

  auto vclock = VectorClock::decode(reader);
  if (!vclock.ok()) return vclock.error();
  snap.vclock = std::move(vclock).value();

  auto captured = reader.i64();
  if (!captured.ok()) return captured.error();
  snap.captured_at = TimePoint{captured.value()};
  return snap;
}

void GlobalState::add(ProcessSnapshot&& snapshot) {
  const ProcessId p = snapshot.process;
  snapshots_[p] = std::move(snapshot);
}

std::vector<ProcessSnapshot> GlobalState::take_all() {
  std::vector<ProcessSnapshot> all;
  all.reserve(snapshots_.size());
  for (auto& [p, snapshot] : snapshots_) all.push_back(std::move(snapshot));
  snapshots_.clear();
  return all;
}

const ProcessSnapshot& GlobalState::at(ProcessId p) const {
  auto it = snapshots_.find(p);
  DDBG_ASSERT(it != snapshots_.end(), "no snapshot for process");
  return it->second;
}

bool GlobalState::equivalent(const GlobalState& other) const {
  return !first_difference(other).has_value();
}

std::optional<std::string> GlobalState::first_difference(
    const GlobalState& other) const {
  if (snapshots_.size() != other.snapshots_.size()) {
    return "different process counts: " + std::to_string(snapshots_.size()) +
           " vs " + std::to_string(other.snapshots_.size());
  }
  for (const auto& [p, mine] : snapshots_) {
    auto it = other.snapshots_.find(p);
    if (it == other.snapshots_.end()) {
      return "process " + to_string(p) + " missing from other state";
    }
    const ProcessSnapshot& theirs = it->second;
    if (mine.state != theirs.state) {
      return "process " + to_string(p) + " state bytes differ (" +
             mine.description + " vs " + theirs.description + ")";
    }
    // Compare channel states by channel id; order within the vector is
    // normalized by sorting copies, and empty entries are dropped first so a
    // sparse recording (only non-empty channels) compares equal to a dense
    // one that materialized every incoming channel.
    auto sorted = [](const std::vector<ChannelState>& channels) {
      std::vector<ChannelState> kept;
      kept.reserve(channels.size());
      for (const ChannelState& cs : channels) {
        if (!cs.messages.empty()) kept.push_back(cs);
      }
      std::sort(kept.begin(), kept.end(),
                [](const ChannelState& a, const ChannelState& b) {
                  return a.channel < b.channel;
                });
      return kept;
    };
    const auto mine_sorted = sorted(mine.in_channels);
    const auto theirs_sorted = sorted(theirs.in_channels);
    if (mine_sorted.size() != theirs_sorted.size()) {
      return "process " + to_string(p) + " channel-state counts differ";
    }
    for (std::size_t i = 0; i < mine_sorted.size(); ++i) {
      if (!(mine_sorted[i] == theirs_sorted[i])) {
        return "process " + to_string(p) + " channel " +
               to_string(mine_sorted[i].channel) + " contents differ (" +
               std::to_string(mine_sorted[i].messages.size()) + " vs " +
               std::to_string(theirs_sorted[i].messages.size()) +
               " messages)";
      }
    }
  }
  return std::nullopt;
}

std::size_t GlobalState::total_channel_messages() const {
  std::size_t total = 0;
  for (const auto& [p, snap] : snapshots_) {
    for (const ChannelState& cs : snap.in_channels) {
      total += cs.messages.size();
    }
  }
  return total;
}

Bytes GlobalState::encode_snapshots() const {
  ByteWriter writer;
  writer.varint(snapshots_.size());
  for (const auto& [process, snapshot] : snapshots_) {
    snapshot.encode(writer);
  }
  return std::move(writer).take();
}

Result<GlobalState> GlobalState::decode_snapshots(
    HaltId id, std::span<const std::uint8_t> data) {
  ByteReader reader(data);
  GlobalState state(id);
  auto count = reader.count();
  if (!count.ok()) return count.error();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto snapshot = ProcessSnapshot::decode(reader);
    if (!snapshot.ok()) return snapshot.error();
    state.add(std::move(snapshot).value());
  }
  if (reader.remaining() != 0) {
    return Error(ErrorCode::kParseError,
                 "trailing bytes after encoded global state");
  }
  return state;
}

std::string GlobalState::describe() const {
  std::ostringstream out;
  out << "global state (wave " << id_.value() << "), " << snapshots_.size()
      << " processes, " << total_channel_messages()
      << " in-flight messages\n";
  for (const auto& [p, snap] : snapshots_) {
    out << "  " << to_string(p) << ": " << snap.description;
    if (!snap.halt_path.empty()) {
      out << "  halt-path=[";
      for (std::size_t i = 0; i < snap.halt_path.size(); ++i) {
        if (i != 0) out << ',';
        out << to_string(snap.halt_path[i]);
      }
      out << ']';
    }
    std::size_t pending = 0;
    for (const ChannelState& cs : snap.in_channels) {
      pending += cs.messages.size();
    }
    if (pending != 0) out << "  (+" << pending << " pending)";
    out << '\n';
  }
  return out.str();
}

}  // namespace ddbg
