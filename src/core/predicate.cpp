#include "core/predicate.hpp"

#include <algorithm>
#include <sstream>

namespace ddbg {

bool compare_values(std::int64_t lhs, CompareOp op, std::int64_t rhs) {
  switch (op) {
    case CompareOp::kNone: return true;
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SimplePredicate
// ---------------------------------------------------------------------------

bool SimplePredicate::matches(const LocalEvent& event) const {
  if (event.process != process) return false;
  if (event.kind != kind) return false;
  if (!name.empty() && event.name != name) return false;
  if (channel_filter.valid() && event.channel != channel_filter) return false;
  if (op != CompareOp::kNone && !compare_values(event.value, op, value)) {
    return false;
  }
  return true;
}

void SimplePredicate::encode(ByteWriter& writer) const {
  writer.varint(process.value());
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.str(name);
  writer.u8(static_cast<std::uint8_t>(op));
  writer.i64(value);
  writer.u32(channel_filter.valid() ? channel_filter.value()
                                    : ChannelId::kInvalid);
}

Result<SimplePredicate> SimplePredicate::decode(ByteReader& reader) {
  SimplePredicate sp;
  auto process = reader.varint();
  if (!process.ok()) return process.error();
  sp.process = ProcessId(static_cast<std::uint32_t>(process.value()));

  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(LocalEventKind::kChannelDestroyed)) {
    return Error(ErrorCode::kParseError, "bad event kind");
  }
  sp.kind = static_cast<LocalEventKind>(kind.value());

  auto name = reader.str();
  if (!name.ok()) return name.error();
  sp.name = std::move(name).value();

  auto op = reader.u8();
  if (!op.ok()) return op.error();
  if (op.value() > static_cast<std::uint8_t>(CompareOp::kGe)) {
    return Error(ErrorCode::kParseError, "bad compare op");
  }
  sp.op = static_cast<CompareOp>(op.value());

  auto value = reader.i64();
  if (!value.ok()) return value.error();
  sp.value = value.value();

  auto channel = reader.u32();
  if (!channel.ok()) return channel.error();
  sp.channel_filter = ChannelId(channel.value());
  return sp;
}

std::string SimplePredicate::describe() const {
  std::ostringstream out;
  out << to_string(process) << ':';
  switch (kind) {
    case LocalEventKind::kUserEvent:
      out << "event(" << name << ")";
      break;
    case LocalEventKind::kProcedureEntered:
      out << "enter(" << name << ")";
      break;
    case LocalEventKind::kStateChange:
      out << name;
      break;
    case LocalEventKind::kMessageSent:
      out << "sent";
      if (channel_filter.valid()) out << '(' << channel_filter.value() << ')';
      break;
    case LocalEventKind::kMessageReceived:
      out << "recv";
      if (channel_filter.valid()) out << '(' << channel_filter.value() << ')';
      break;
    case LocalEventKind::kProcessStarted:
      out << "started";
      break;
    case LocalEventKind::kProcessTerminated:
      out << "terminated";
      break;
    case LocalEventKind::kChannelCreated:
      out << "channel_created";
      break;
    case LocalEventKind::kChannelDestroyed:
      out << "channel_destroyed";
      break;
  }
  if (op != CompareOp::kNone) out << to_string(op) << value;
  return out.str();
}

SimplePredicate SimplePredicate::user_event(ProcessId p, std::string name) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kUserEvent;
  sp.name = std::move(name);
  return sp;
}

SimplePredicate SimplePredicate::procedure_entered(ProcessId p,
                                                   std::string name) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kProcedureEntered;
  sp.name = std::move(name);
  return sp;
}

SimplePredicate SimplePredicate::var_compare(ProcessId p, std::string name,
                                             CompareOp op,
                                             std::int64_t value) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kStateChange;
  sp.name = std::move(name);
  sp.op = op;
  sp.value = value;
  return sp;
}

SimplePredicate SimplePredicate::message_sent(ProcessId p) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kMessageSent;
  return sp;
}

SimplePredicate SimplePredicate::message_received(ProcessId p) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kMessageReceived;
  return sp;
}

SimplePredicate SimplePredicate::process_terminated(ProcessId p) {
  SimplePredicate sp;
  sp.process = p;
  sp.kind = LocalEventKind::kProcessTerminated;
  return sp;
}

// ---------------------------------------------------------------------------
// DisjunctivePredicate
// ---------------------------------------------------------------------------

bool DisjunctivePredicate::matches(const LocalEvent& event) const {
  return std::any_of(alternatives.begin(), alternatives.end(),
                     [&](const SimplePredicate& sp) {
                       return sp.matches(event);
                     });
}

std::vector<ProcessId> DisjunctivePredicate::involved_processes() const {
  std::vector<ProcessId> processes;
  for (const SimplePredicate& sp : alternatives) {
    if (std::find(processes.begin(), processes.end(), sp.process) ==
        processes.end()) {
      processes.push_back(sp.process);
    }
  }
  return processes;
}

bool DisjunctivePredicate::involves(ProcessId p) const {
  return std::any_of(alternatives.begin(), alternatives.end(),
                     [&](const SimplePredicate& sp) {
                       return sp.process == p;
                     });
}

void DisjunctivePredicate::encode(ByteWriter& writer) const {
  writer.varint(alternatives.size());
  for (const SimplePredicate& sp : alternatives) sp.encode(writer);
}

Result<DisjunctivePredicate> DisjunctivePredicate::decode(ByteReader& reader) {
  auto n = reader.count();
  if (!n.ok()) return n.error();
  DisjunctivePredicate dp;
  dp.alternatives.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto sp = SimplePredicate::decode(reader);
    if (!sp.ok()) return sp.error();
    dp.alternatives.push_back(std::move(sp).value());
  }
  return dp;
}

std::string DisjunctivePredicate::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < alternatives.size(); ++i) {
    if (i != 0) out << " | ";
    out << alternatives[i].describe();
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// LinkedPredicate
// ---------------------------------------------------------------------------

LinkedPredicate LinkedPredicate::expanded() const {
  LinkedPredicate out;
  for (const Stage& stage : stages) {
    DDBG_ASSERT(stage.repeat >= 1, "stage repeat must be >= 1");
    for (std::uint32_t i = 0; i < stage.repeat; ++i) {
      out.stages.push_back(Stage{stage.dp, 1});
    }
  }
  return out;
}

LinkedPredicate LinkedPredicate::rest() const {
  DDBG_ASSERT(!stages.empty(), "rest() on empty LinkedPredicate");
  DDBG_ASSERT(stages.front().repeat == 1, "rest() requires an expanded LP");
  LinkedPredicate out;
  out.stages.assign(stages.begin() + 1, stages.end());
  return out;
}

const DisjunctivePredicate& LinkedPredicate::first() const {
  DDBG_ASSERT(!stages.empty(), "first() on empty LinkedPredicate");
  return stages.front().dp;
}

std::size_t LinkedPredicate::depth() const {
  std::size_t total = 0;
  for (const Stage& stage : stages) total += stage.repeat;
  return total;
}

void LinkedPredicate::encode(ByteWriter& writer) const {
  writer.varint(stages.size());
  for (const Stage& stage : stages) {
    stage.dp.encode(writer);
    writer.varint(stage.repeat);
  }
}

Result<LinkedPredicate> LinkedPredicate::decode(ByteReader& reader) {
  auto n = reader.count();
  if (!n.ok()) return n.error();
  LinkedPredicate lp;
  lp.stages.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto dp = DisjunctivePredicate::decode(reader);
    if (!dp.ok()) return dp.error();
    auto repeat = reader.varint();
    if (!repeat.ok()) return repeat.error();
    if (repeat.value() == 0) {
      return Error(ErrorCode::kParseError, "stage repeat must be >= 1");
    }
    lp.stages.push_back(Stage{std::move(dp).value(),
                              static_cast<std::uint32_t>(repeat.value())});
  }
  return lp;
}

Bytes LinkedPredicate::encode_to_bytes() const {
  ByteWriter writer;
  encode(writer);
  return std::move(writer).take();
}

Result<LinkedPredicate> LinkedPredicate::decode_from_bytes(
    std::span<const std::uint8_t> data) {
  ByteReader reader(data);
  auto lp = decode(reader);
  if (!lp.ok()) return lp.error();
  if (!reader.exhausted()) {
    return Error(ErrorCode::kParseError, "trailing bytes after LP");
  }
  return lp;
}

std::string LinkedPredicate::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) out << " -> ";
    const bool needs_parens =
        stages[i].repeat > 1 || stages[i].dp.alternatives.size() > 1;
    if (needs_parens) out << '(';
    out << stages[i].dp.describe();
    if (needs_parens) out << ')';
    if (stages[i].repeat > 1) out << '^' << stages[i].repeat;
  }
  return out.str();
}

LinkedPredicate LinkedPredicate::single(DisjunctivePredicate dp) {
  LinkedPredicate lp;
  lp.stages.push_back(Stage{std::move(dp), 1});
  return lp;
}

LinkedPredicate LinkedPredicate::chain(std::vector<DisjunctivePredicate> dps) {
  LinkedPredicate lp;
  lp.stages.reserve(dps.size());
  for (auto& dp : dps) lp.stages.push_back(Stage{std::move(dp), 1});
  return lp;
}

// ---------------------------------------------------------------------------
// ConjunctivePredicate
// ---------------------------------------------------------------------------

std::vector<ProcessId> ConjunctivePredicate::involved_processes() const {
  std::vector<ProcessId> processes;
  for (const SimplePredicate& sp : terms) {
    if (std::find(processes.begin(), processes.end(), sp.process) ==
        processes.end()) {
      processes.push_back(sp.process);
    }
  }
  return processes;
}

Result<std::vector<LinkedPredicate>> ConjunctivePredicate::compile_ordered()
    const {
  if (terms.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty conjunction");
  }
  if (terms.size() > kMaxOrderedTerms) {
    return Error(ErrorCode::kInvalidArgument,
                 "too many conjunction terms for ordered compilation");
  }
  std::vector<std::size_t> order(terms.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<LinkedPredicate> out;
  do {
    LinkedPredicate lp;
    for (const std::size_t index : order) {
      DisjunctivePredicate dp;
      dp.alternatives.push_back(terms[index]);
      lp.stages.push_back(LinkedPredicate::Stage{std::move(dp), 1});
    }
    out.push_back(std::move(lp));
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

void ConjunctivePredicate::encode(ByteWriter& writer) const {
  writer.varint(terms.size());
  for (const SimplePredicate& sp : terms) sp.encode(writer);
}

Result<ConjunctivePredicate> ConjunctivePredicate::decode(ByteReader& reader) {
  auto n = reader.count();
  if (!n.ok()) return n.error();
  ConjunctivePredicate cp;
  cp.terms.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto sp = SimplePredicate::decode(reader);
    if (!sp.ok()) return sp.error();
    cp.terms.push_back(std::move(sp).value());
  }
  return cp;
}

std::string ConjunctivePredicate::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i != 0) out << " & ";
    out << terms[i].describe();
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// BreakpointSpec
// ---------------------------------------------------------------------------

void BreakpointSpec::encode(ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(kind));
  if (kind == Kind::kLinked) {
    linked.encode(writer);
  } else {
    conjunctive.encode(writer);
    writer.u8(static_cast<std::uint8_t>(mode));
  }
  writer.u8(static_cast<std::uint8_t>(action));
}

Result<BreakpointSpec> BreakpointSpec::decode(ByteReader& reader) {
  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  BreakpointSpec spec;
  if (kind.value() == static_cast<std::uint8_t>(Kind::kLinked)) {
    spec.kind = Kind::kLinked;
    auto lp = LinkedPredicate::decode(reader);
    if (!lp.ok()) return lp.error();
    spec.linked = std::move(lp).value();
  } else if (kind.value() == static_cast<std::uint8_t>(Kind::kConjunctive)) {
    spec.kind = Kind::kConjunctive;
    auto cp = ConjunctivePredicate::decode(reader);
    if (!cp.ok()) return cp.error();
    spec.conjunctive = std::move(cp).value();
    auto mode = reader.u8();
    if (!mode.ok()) return mode.error();
    if (mode.value() > static_cast<std::uint8_t>(ConjunctionMode::kUnordered)) {
      return Error(ErrorCode::kParseError, "bad conjunction mode");
    }
    spec.mode = static_cast<ConjunctionMode>(mode.value());
  } else {
    return Error(ErrorCode::kParseError, "bad breakpoint kind");
  }
  auto action = reader.u8();
  if (!action.ok()) return action.error();
  if (action.value() > static_cast<std::uint8_t>(BreakpointAction::kMonitor)) {
    return Error(ErrorCode::kParseError, "bad breakpoint action");
  }
  spec.action = static_cast<BreakpointAction>(action.value());
  return spec;
}

std::string BreakpointSpec::describe() const {
  std::string out;
  if (kind == Kind::kLinked) {
    out = linked.describe();
  } else {
    out = conjunctive.describe();
    out += mode == ConjunctionMode::kOrdered ? " [ordered]" : " [unordered]";
  }
  if (action == BreakpointAction::kMonitor) out += " [monitor]";
  return out;
}

}  // namespace ddbg
