#include "core/commands.hpp"

#include <algorithm>

namespace ddbg {

Bytes Command::encode() const {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.u32(breakpoint.valid() ? breakpoint.value() : BreakpointId::kInvalid);
  writer.bytes(predicate);
  writer.varint(stage_index);
  writer.u8(monitor ? 1 : 0);
  writer.u32(target.valid() ? target.value() : ProcessId::kInvalid);
  writer.varint(wave_id);
  writer.u32(reporter.valid() ? reporter.value() : ProcessId::kInvalid);
  writer.u8(report.has_value() ? 1 : 0);
  if (report.has_value()) report->encode(writer);
  writer.str(text);
  writer.varint(reports.size());
  for (const ProcessSnapshot& snapshot : reports) snapshot.encode(writer);
  writer.bytes(inner);
  return std::move(writer).take();
}

Result<Command> Command::decode(std::span<const std::uint8_t> data) {
  ByteReader reader(data);
  Command cmd;

  auto kind = reader.u8();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(CommandKind::kTierUnicast)) {
    return Error(ErrorCode::kParseError, "unknown command kind");
  }
  cmd.kind = static_cast<CommandKind>(kind.value());

  auto bp = reader.u32();
  if (!bp.ok()) return bp.error();
  cmd.breakpoint = BreakpointId(bp.value());

  auto predicate = reader.bytes();
  if (!predicate.ok()) return predicate.error();
  cmd.predicate = std::move(predicate).value();

  auto stage = reader.varint();
  if (!stage.ok()) return stage.error();
  cmd.stage_index = static_cast<std::uint32_t>(stage.value());

  auto monitor = reader.u8();
  if (!monitor.ok()) return monitor.error();
  cmd.monitor = monitor.value() != 0;

  auto target = reader.u32();
  if (!target.ok()) return target.error();
  cmd.target = ProcessId(target.value());

  auto wave = reader.varint();
  if (!wave.ok()) return wave.error();
  cmd.wave_id = wave.value();

  auto reporter = reader.u32();
  if (!reporter.ok()) return reporter.error();
  cmd.reporter = ProcessId(reporter.value());

  auto has_report = reader.u8();
  if (!has_report.ok()) return has_report.error();
  if (has_report.value() != 0) {
    auto snapshot = ProcessSnapshot::decode(reader);
    if (!snapshot.ok()) return snapshot.error();
    cmd.report = std::move(snapshot).value();
  }

  auto text = reader.str();
  if (!text.ok()) return text.error();
  cmd.text = std::move(text).value();

  auto num_reports = reader.varint();
  if (!num_reports.ok()) return num_reports.error();
  // Clamp the reserve so a corrupt count cannot trigger a huge allocation;
  // decode of the missing snapshots fails on its own below.
  cmd.reports.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          num_reports.value(), 1024)));
  for (std::uint64_t i = 0; i < num_reports.value(); ++i) {
    auto snapshot = ProcessSnapshot::decode(reader);
    if (!snapshot.ok()) return snapshot.error();
    cmd.reports.push_back(std::move(snapshot).value());
  }

  auto inner = reader.bytes();
  if (!inner.ok()) return inner.error();
  cmd.inner = std::move(inner).value();

  if (!reader.exhausted()) {
    return Error(ErrorCode::kParseError, "trailing bytes after command");
  }
  return cmd;
}

Command Command::arm_predicate(BreakpointId bp, Bytes lp,
                               std::uint32_t stage_index, bool monitor) {
  Command cmd;
  cmd.kind = CommandKind::kArmPredicate;
  cmd.breakpoint = bp;
  cmd.predicate = std::move(lp);
  cmd.stage_index = stage_index;
  cmd.monitor = monitor;
  return cmd;
}

Command Command::arm_notify(BreakpointId bp, Bytes sp,
                            std::uint32_t term_index) {
  Command cmd;
  cmd.kind = CommandKind::kArmNotify;
  cmd.breakpoint = bp;
  cmd.predicate = std::move(sp);
  cmd.stage_index = term_index;
  return cmd;
}

Command Command::disarm(BreakpointId bp) {
  Command cmd;
  cmd.kind = CommandKind::kDisarmBreakpoint;
  cmd.breakpoint = bp;
  return cmd;
}

Command Command::resume(std::uint64_t halt_id) {
  Command cmd;
  cmd.kind = CommandKind::kResume;
  cmd.wave_id = halt_id;
  return cmd;
}

Command Command::query_state() {
  Command cmd;
  cmd.kind = CommandKind::kQueryState;
  return cmd;
}

Command Command::halt_report(ProcessId reporter, std::uint64_t halt_id,
                             ProcessSnapshot snapshot) {
  Command cmd;
  cmd.kind = CommandKind::kHaltReport;
  cmd.reporter = reporter;
  cmd.wave_id = halt_id;
  cmd.report = std::move(snapshot);
  return cmd;
}

Command Command::snapshot_report(ProcessId reporter,
                                 std::uint64_t snapshot_id,
                                 ProcessSnapshot snapshot) {
  Command cmd;
  cmd.kind = CommandKind::kSnapshotReport;
  cmd.reporter = reporter;
  cmd.wave_id = snapshot_id;
  cmd.report = std::move(snapshot);
  return cmd;
}

Command Command::breakpoint_hit(ProcessId reporter, BreakpointId bp,
                                std::string description) {
  Command cmd;
  cmd.kind = CommandKind::kBreakpointHit;
  cmd.reporter = reporter;
  cmd.breakpoint = bp;
  cmd.text = std::move(description);
  return cmd;
}

Command Command::notify_satisfied(ProcessId reporter, BreakpointId bp,
                                  std::uint32_t term_index) {
  Command cmd;
  cmd.kind = CommandKind::kNotifySatisfied;
  cmd.reporter = reporter;
  cmd.breakpoint = bp;
  cmd.stage_index = term_index;
  return cmd;
}

Command Command::route_marker(ProcessId reporter, ProcessId target,
                              BreakpointId bp, Bytes lp,
                              std::uint32_t stage_index, bool monitor) {
  Command cmd;
  cmd.kind = CommandKind::kRouteMarker;
  cmd.reporter = reporter;
  cmd.target = target;
  cmd.breakpoint = bp;
  cmd.predicate = std::move(lp);
  cmd.stage_index = stage_index;
  cmd.monitor = monitor;
  return cmd;
}

Command Command::state_report(ProcessId reporter, ProcessSnapshot snapshot) {
  Command cmd;
  cmd.kind = CommandKind::kStateReport;
  cmd.reporter = reporter;
  cmd.report = std::move(snapshot);
  return cmd;
}

Command Command::aggregated_halt_report(ProcessId reporter,
                                        std::uint64_t halt_id,
                                        std::vector<ProcessSnapshot> snapshots) {
  Command cmd;
  cmd.kind = CommandKind::kAggregatedHaltReport;
  cmd.reporter = reporter;
  cmd.wave_id = halt_id;
  cmd.reports = std::move(snapshots);
  return cmd;
}

Command Command::aggregated_snapshot_report(
    ProcessId reporter, std::uint64_t snapshot_id,
    std::vector<ProcessSnapshot> snapshots) {
  Command cmd;
  cmd.kind = CommandKind::kAggregatedSnapshotReport;
  cmd.reporter = reporter;
  cmd.wave_id = snapshot_id;
  cmd.reports = std::move(snapshots);
  return cmd;
}

Command Command::tier_broadcast(Bytes inner) {
  Command cmd;
  cmd.kind = CommandKind::kTierBroadcast;
  cmd.inner = std::move(inner);
  return cmd;
}

Command Command::tier_unicast(ProcessId target, Bytes inner) {
  Command cmd;
  cmd.kind = CommandKind::kTierUnicast;
  cmd.target = target;
  cmd.inner = std::move(inner);
  return cmd;
}

}  // namespace ddbg
