// Text syntax for breakpoint predicates.
//
//   breakpoint  := conjunction | linked
//   linked      := dpterm ( "->" dpterm )*
//   dpterm      := "(" dp ")" [ "^" INT ]  |  dp
//   dp          := atom ( "|" atom )*
//   conjunction := atom ( "&" atom )+ [ "[ordered]" | "[unordered]" ]
//   atom        := "p" INT ":" sp
//   sp          := "event(" IDENT ")" | "enter(" IDENT ")"
//               |  "sent" | "recv" | "started" | "terminated"
//               |  IDENT CMP INT                  (watched-variable compare)
//   CMP         := "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Examples:
//   p0:enter(handle_request)
//   p0:event(token) | p1:event(token)
//   p0:event(sent_order) -> (p2:recv)^3 -> p1:balance<0
//   p0:x==7 & p1:y==9 [unordered]
//
// Conjunctions default to the ordered interpretation (the detectable one,
// section 3.5); append "[unordered]" for the debugger-gathered variant.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "core/predicate.hpp"

namespace ddbg {

[[nodiscard]] Result<BreakpointSpec> parse_breakpoint(std::string_view text);

// Parse just a linked predicate (no conjunction allowed).
[[nodiscard]] Result<LinkedPredicate> parse_linked_predicate(
    std::string_view text);

}  // namespace ddbg
