// Global states: the S_r recorded by the C&L algorithm and the S_h produced
// by the Halting Algorithm (sections 2.1–2.2).
//
// A global state is the per-process application states plus the per-channel
// sequences of in-flight messages.  Theorem 2 of the paper says S_h == S_r
// "in the sense that (1) the state of each process ... is the same ... and
// (2) the undelivered messages in each channel ... are the same"; the
// equivalent() predicate implements exactly that comparison, and experiment
// E1 checks it on identical deterministic executions.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "clock/vector_clock.hpp"
#include "common/ids.hpp"
#include "common/serialization.hpp"
#include "common/time.hpp"

namespace ddbg {

// Recorded contents of one incoming channel: the application payloads, in
// order, that were in flight at the cut.
struct ChannelState {
  ChannelId channel;
  std::vector<Bytes> messages;

  friend bool operator==(const ChannelState& a, const ChannelState& b) {
    return a.channel == b.channel && a.messages == b.messages;
  }
};

// One process's contribution to a global state.
struct ProcessSnapshot {
  ProcessId process;
  Bytes state;              // opaque application state bytes
  std::string description;  // human-readable state rendering
  // Incoming-channel states, sparse: only channels that recorded at least
  // one in-flight payload appear; an absent channel means it was empty at
  // the cut (equivalence treats the two the same).
  std::vector<ChannelState> in_channels;
  // Section 2.2.4: the names accumulated on the halt marker this process
  // halted on (empty for a spontaneous initiator or a C&L recording).
  std::vector<ProcessId> halt_path;
  // Vector clock at the instant of halting/recording (instrumentation).
  VectorClock vclock;
  TimePoint captured_at{};

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<ProcessSnapshot> decode(ByteReader& reader);
};

// A (possibly still-assembling) global state keyed by halt/snapshot wave.
class GlobalState {
 public:
  GlobalState() = default;
  explicit GlobalState(HaltId id) : id_(id) {}

  [[nodiscard]] HaltId id() const { return id_; }

  // The aggregation path moves snapshots all the way from the reporting
  // process into the assembled state; the lvalue overload copies explicitly
  // for callers that still need theirs.
  void add(ProcessSnapshot&& snapshot);
  void add(const ProcessSnapshot& snapshot) { add(ProcessSnapshot(snapshot)); }
  [[nodiscard]] bool has(ProcessId p) const {
    return snapshots_.contains(p);
  }
  [[nodiscard]] const ProcessSnapshot& at(ProcessId p) const;
  [[nodiscard]] std::size_t size() const { return snapshots_.size(); }
  [[nodiscard]] const std::map<ProcessId, ProcessSnapshot>& snapshots() const {
    return snapshots_;
  }
  // Moves every snapshot out (ascending process id) and empties the state;
  // the convergecast uses this to re-ship merged fragments without copying.
  [[nodiscard]] std::vector<ProcessSnapshot> take_all();

  // Theorem-2 equivalence: same processes, same state bytes, same channel
  // contents.  halt_path, clocks and capture times are *not* compared (they
  // are metadata about how the cut was taken, not part of the cut).
  [[nodiscard]] bool equivalent(const GlobalState& other) const;
  // Detailed first difference, for test diagnostics.
  [[nodiscard]] std::optional<std::string> first_difference(
      const GlobalState& other) const;

  // Total undelivered messages across all recorded channels.
  [[nodiscard]] std::size_t total_channel_messages() const;

  [[nodiscard]] std::string describe() const;

  // Wire form: varint count + ProcessSnapshot encodings, the same
  // per-snapshot format the aggregation convergecast ships.  Used by the
  // session protocol (state/snapshot payloads) and the replay log's
  // HaltCut records.
  [[nodiscard]] Bytes encode_snapshots() const;
  [[nodiscard]] static Result<GlobalState> decode_snapshots(
      HaltId id, std::span<const std::uint8_t> data);

 private:
  HaltId id_;
  std::map<ProcessId, ProcessSnapshot> snapshots_;
};

}  // namespace ddbg
