#include "core/event.hpp"

#include <sstream>

namespace ddbg {

std::string LocalEvent::describe() const {
  std::ostringstream out;
  out << to_string(process) << '/' << to_string(kind);
  if (!name.empty()) out << '(' << name << ')';
  if (kind == LocalEventKind::kStateChange ||
      kind == LocalEventKind::kUserEvent) {
    out << '=' << value;
  }
  if (channel.valid()) out << " on " << to_string(channel);
  out << " @L" << lamport << " seq" << local_seq;
  return out.str();
}

}  // namespace ddbg
