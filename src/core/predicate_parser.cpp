#include "core/predicate_parser.hpp"

#include <cctype>
#include <limits>
#include <string>
#include <vector>

namespace ddbg {

namespace {

enum class TokenKind {
  kIdent,
  kInt,
  kColon,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kCaret,
  kPipe,
  kAmp,
  kArrow,
  kCompare,  // text holds the operator
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::int64_t number = 0;
  // Byte offset of the token's first character in the input, so parse
  // errors can say *where* ("syntax error at column k", 1-based).
  std::size_t pos = 0;
};

// All parse diagnostics carry a 1-based column so interactive frontends can
// point at the offending character.
Error parse_error_at(std::size_t pos, const std::string& detail) {
  return Error(ErrorCode::kParseError, "syntax error at column " +
                                           std::to_string(pos + 1) + ": " +
                                           detail);
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> tokenize() {
    std::vector<Token> tokens;
    while (true) {
      skip_space();
      if (pos_ >= input_.size()) break;
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(ident());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        auto tok = integer();
        if (!tok.ok()) return tok.error();
        tokens.push_back(std::move(tok).value());
      } else {
        auto tok = symbol();
        if (!tok.ok()) return tok.error();
        tokens.push_back(std::move(tok).value());
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0, input_.size()});
    return tokens;
  }

 private:
  void skip_space() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Token ident() {
    const std::size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent,
                 std::string(input_.substr(start, pos_ - start)), 0, start};
  }

  Result<Token> integer() {
    std::int64_t value = 0;
    const std::size_t start = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      const std::int64_t digit = input_[pos_] - '0';
      // Guard *before* multiplying: a 19-digit literal can exceed
      // INT64_MAX mid-accumulation, and signed overflow is UB, not a
      // wrapped value we could range-check afterwards.
      if (value > (std::numeric_limits<std::int64_t>::max() - digit) / 10) {
        return parse_error_at(start, "integer literal out of range");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return Token{TokenKind::kInt, "", value, start};
  }

  Result<Token> symbol() {
    const std::size_t start = pos_;
    const char c = input_[pos_];
    const char next = pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';
    auto two = [&](TokenKind kind, const char* text) {
      pos_ += 2;
      return Token{kind, text, 0, start};
    };
    auto one = [&](TokenKind kind, const char* text) {
      pos_ += 1;
      return Token{kind, text, 0, start};
    };
    switch (c) {
      case ':': return one(TokenKind::kColon, ":");
      case '(': return one(TokenKind::kLParen, "(");
      case ')': return one(TokenKind::kRParen, ")");
      case '[': return one(TokenKind::kLBracket, "[");
      case ']': return one(TokenKind::kRBracket, "]");
      case '^': return one(TokenKind::kCaret, "^");
      case '|': return one(TokenKind::kPipe, "|");
      case '&': return one(TokenKind::kAmp, "&");
      case '-': {
        if (next == '>') return two(TokenKind::kArrow, "->");
        if (std::isdigit(static_cast<unsigned char>(next))) {
          ++pos_;  // consume '-'
          auto tok = integer();
          if (!tok.ok()) return tok.error();
          Token negated = std::move(tok).value();
          negated.number = -negated.number;
          negated.pos = start;
          return negated;
        }
        break;
      }
      case '=':
        if (next == '=') return two(TokenKind::kCompare, "==");
        break;
      case '!':
        if (next == '=') return two(TokenKind::kCompare, "!=");
        break;
      case '<':
        if (next == '=') return two(TokenKind::kCompare, "<=");
        return one(TokenKind::kCompare, "<");
      case '>':
        if (next == '=') return two(TokenKind::kCompare, ">=");
        return one(TokenKind::kCompare, ">");
      default: break;
    }
    return parse_error_at(start,
                          std::string("unexpected character '") + c + "'");
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<BreakpointSpec> parse_breakpoint() {
    // A conjunction is `atom & atom ...` — detect by looking ahead for '&'
    // at nesting depth 0.
    if (contains_top_level_amp()) return parse_conjunction();
    auto lp = parse_linked();
    if (!lp.ok()) return lp.error();
    BreakpointSpec spec;
    spec.kind = BreakpointSpec::Kind::kLinked;
    spec.linked = std::move(lp).value();
    if (auto s = parse_suffixes(spec); !s.ok()) return s.error();
    if (auto s = expect(TokenKind::kEnd); !s.ok()) return s.error();
    return spec;
  }

  Result<LinkedPredicate> parse_linked_only() {
    auto lp = parse_linked();
    if (!lp.ok()) return lp.error();
    if (auto s = expect(TokenKind::kEnd); !s.ok()) return s.error();
    return lp;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }

  Token consume() { return tokens_[pos_++]; }

  [[nodiscard]] bool match(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect(TokenKind kind) {
    if (peek().kind != kind) {
      if (peek().kind == TokenKind::kEnd) {
        return parse_error_at(peek().pos, "unexpected end of input");
      }
      return parse_error_at(peek().pos,
                            "unexpected token '" + peek().text + "'");
    }
    ++pos_;
    return Status::ok_status();
  }

  [[nodiscard]] bool contains_top_level_amp() const {
    int depth = 0;
    for (const Token& tok : tokens_) {
      if (tok.kind == TokenKind::kLParen) ++depth;
      if (tok.kind == TokenKind::kRParen) --depth;
      if (tok.kind == TokenKind::kAmp && depth == 0) return true;
    }
    return false;
  }

  Result<BreakpointSpec> parse_conjunction() {
    ConjunctivePredicate cp;
    while (true) {
      auto sp = parse_atom();
      if (!sp.ok()) return sp.error();
      cp.terms.push_back(std::move(sp).value());
      if (!match(TokenKind::kAmp)) break;
    }
    if (cp.terms.size() < 2) {
      return parse_error_at(peek().pos,
                            "conjunction needs at least two terms");
    }
    BreakpointSpec spec;
    spec.kind = BreakpointSpec::Kind::kConjunctive;
    spec.conjunctive = std::move(cp);
    if (auto s = parse_suffixes(spec); !s.ok()) return s.error();
    if (auto s = expect(TokenKind::kEnd); !s.ok()) return s.error();
    return spec;
  }

  // Zero or more bracketed modifiers: [ordered] / [unordered] (conjunction
  // interpretation, section 3.5) and [monitor] / [halt] (action).
  Status parse_suffixes(BreakpointSpec& spec) {
    while (match(TokenKind::kLBracket)) {
      if (peek().kind != TokenKind::kIdent) {
        return parse_error_at(peek().pos, "expected modifier after '['");
      }
      const Token mod = consume();
      const std::string& name = mod.text;
      if (name == "unordered" || name == "ordered") {
        if (spec.kind != BreakpointSpec::Kind::kConjunctive) {
          return parse_error_at(mod.pos,
                                "'" + name + "' applies only to conjunctions");
        }
        spec.mode = name == "unordered" ? ConjunctionMode::kUnordered
                                        : ConjunctionMode::kOrdered;
      } else if (name == "monitor") {
        spec.action = BreakpointAction::kMonitor;
      } else if (name == "halt") {
        spec.action = BreakpointAction::kHalt;
      } else {
        return parse_error_at(mod.pos, "unknown modifier '" + name + "'");
      }
      if (auto s = expect(TokenKind::kRBracket); !s.ok()) return s.error();
    }
    return Status::ok_status();
  }

  Result<LinkedPredicate> parse_linked() {
    LinkedPredicate lp;
    while (true) {
      auto stage = parse_stage();
      if (!stage.ok()) return stage.error();
      lp.stages.push_back(std::move(stage).value());
      if (!match(TokenKind::kArrow)) break;
    }
    return lp;
  }

  Result<LinkedPredicate::Stage> parse_stage() {
    if (match(TokenKind::kLParen)) {
      auto dp = parse_dp();
      if (!dp.ok()) return dp.error();
      if (auto s = expect(TokenKind::kRParen); !s.ok()) return s.error();
      std::uint32_t repeat = 1;
      if (match(TokenKind::kCaret)) {
        if (peek().kind != TokenKind::kInt) {
          return parse_error_at(peek().pos, "expected count after '^'");
        }
        const Token count_tok = consume();
        const std::int64_t count = count_tok.number;
        if (count < 1 || count > 1'000'000) {
          return parse_error_at(count_tok.pos, "repetition out of range");
        }
        repeat = static_cast<std::uint32_t>(count);
      }
      return LinkedPredicate::Stage{std::move(dp).value(), repeat};
    }
    auto dp = parse_dp();
    if (!dp.ok()) return dp.error();
    return LinkedPredicate::Stage{std::move(dp).value(), 1};
  }

  Result<DisjunctivePredicate> parse_dp() {
    DisjunctivePredicate dp;
    while (true) {
      auto sp = parse_atom();
      if (!sp.ok()) return sp.error();
      dp.alternatives.push_back(std::move(sp).value());
      if (!match(TokenKind::kPipe)) break;
    }
    return dp;
  }

  Result<SimplePredicate> parse_atom() {
    // PROC ":" sp, where PROC is an identifier like "p3".
    if (peek().kind != TokenKind::kIdent) {
      if (peek().kind == TokenKind::kEnd) {
        return parse_error_at(peek().pos,
                              "expected process name (e.g. p0)");
      }
      return parse_error_at(peek().pos,
                            "expected process name (e.g. p0), got '" +
                                peek().text + "'");
    }
    const Token proc_tok = consume();
    const std::string& proc = proc_tok.text;
    if (proc.size() < 2 || proc[0] != 'p') {
      return parse_error_at(proc_tok.pos,
                            "process name must look like p<N>: '" + proc +
                                "'");
    }
    std::uint64_t proc_num = 0;
    for (std::size_t i = 1; i < proc.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(proc[i]))) {
        return parse_error_at(proc_tok.pos,
                              "process name must look like p<N>: '" + proc +
                                  "'");
      }
      proc_num = proc_num * 10 + static_cast<std::uint64_t>(proc[i] - '0');
      // Process ids are 32-bit; bail before a long digit run wraps the
      // accumulator (also caps the loop so 64-bit overflow is unreachable).
      if (proc_num > std::numeric_limits<std::uint32_t>::max()) {
        return parse_error_at(proc_tok.pos,
                              "process number out of range: '" + proc + "'");
      }
    }
    const ProcessId process(static_cast<std::uint32_t>(proc_num));
    if (auto s = expect(TokenKind::kColon); !s.ok()) return s.error();

    if (peek().kind != TokenKind::kIdent) {
      if (peek().kind == TokenKind::kEnd) {
        return parse_error_at(peek().pos, "expected predicate after ':'");
      }
      return parse_error_at(peek().pos, "expected predicate after ':', got '" +
                                            peek().text + "'");
    }
    const std::string word = consume().text;

    // A comparison after the name means it is a watched variable, even if
    // it collides with a keyword (e.g. a variable named "sent").
    const bool is_comparison = peek().kind == TokenKind::kCompare;

    // "sent" / "recv" accept an optional channel filter: p0:recv(3).
    auto parse_channel_filter = [this](SimplePredicate sp)
        -> Result<SimplePredicate> {
      if (!match(TokenKind::kLParen)) return sp;
      if (peek().kind != TokenKind::kInt) {
        return parse_error_at(peek().pos,
                              "expected channel number inside ()");
      }
      const Token channel_tok = consume();
      const std::int64_t channel = channel_tok.number;
      if (channel < 0 ||
          channel > std::numeric_limits<std::uint32_t>::max()) {
        return parse_error_at(channel_tok.pos, "channel number out of range");
      }
      sp.channel_filter = ChannelId(static_cast<std::uint32_t>(channel));
      if (auto s = expect(TokenKind::kRParen); !s.ok()) return s.error();
      return sp;
    };

    if (!is_comparison && word == "sent") {
      return parse_channel_filter(SimplePredicate::message_sent(process));
    }
    if (!is_comparison && word == "recv") {
      return parse_channel_filter(SimplePredicate::message_received(process));
    }
    if (!is_comparison && word == "terminated") {
      return SimplePredicate::process_terminated(process);
    }
    if (!is_comparison && word == "started") {
      SimplePredicate sp;
      sp.process = process;
      sp.kind = LocalEventKind::kProcessStarted;
      return sp;
    }
    if (!is_comparison && (word == "event" || word == "enter")) {
      if (auto s = expect(TokenKind::kLParen); !s.ok()) return s.error();
      if (peek().kind != TokenKind::kIdent) {
        return parse_error_at(peek().pos, "expected name inside ()");
      }
      const std::string name = consume().text;
      if (auto s = expect(TokenKind::kRParen); !s.ok()) return s.error();
      return word == "event"
                 ? SimplePredicate::user_event(process, name)
                 : SimplePredicate::procedure_entered(process, name);
    }
    // Otherwise a watched-variable comparison: IDENT CMP INT.
    if (peek().kind != TokenKind::kCompare) {
      return parse_error_at(peek().pos,
                            "expected comparison after variable '" + word +
                                "'");
    }
    const std::string op_text = consume().text;
    CompareOp op = CompareOp::kNone;
    if (op_text == "==") op = CompareOp::kEq;
    else if (op_text == "!=") op = CompareOp::kNe;
    else if (op_text == "<") op = CompareOp::kLt;
    else if (op_text == "<=") op = CompareOp::kLe;
    else if (op_text == ">") op = CompareOp::kGt;
    else if (op_text == ">=") op = CompareOp::kGe;
    if (peek().kind != TokenKind::kInt) {
      return parse_error_at(peek().pos,
                            "expected integer after '" + op_text + "'");
    }
    const std::int64_t value = consume().number;
    return SimplePredicate::var_compare(process, word, op, value);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<BreakpointSpec> parse_breakpoint(std::string_view text) {
  auto tokens = Lexer(text).tokenize();
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).value()).parse_breakpoint();
}

Result<LinkedPredicate> parse_linked_predicate(std::string_view text) {
  auto tokens = Lexer(text).tokenize();
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(tokens).value()).parse_linked_only();
}

}  // namespace ddbg
