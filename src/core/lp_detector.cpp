#include "core/lp_detector.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace ddbg {

LinkedPredicateDetector::LinkedPredicateDetector(ProcessId self,
                                                 Callbacks callbacks)
    : self_(self), callbacks_(std::move(callbacks)) {}

void LinkedPredicateDetector::arm(BreakpointId bp, LinkedPredicate lp,
                                  std::uint32_t stage_index, bool monitor) {
  DDBG_ASSERT(!lp.empty(), "cannot arm an empty LinkedPredicate");
  DDBG_ASSERT(lp.first().involves(self_),
              "armed LP's first DP must involve this process");
  watches_.push_back(Watch{bp, std::move(lp), stage_index, monitor});
}

void LinkedPredicateDetector::arm_notify(BreakpointId bp, SimplePredicate sp,
                                         std::uint32_t term_index) {
  DDBG_ASSERT(sp.process == self_, "notify watch must be local");
  notify_watches_.push_back(NotifyWatch{bp, std::move(sp), term_index});
}

std::size_t LinkedPredicateDetector::disarm(BreakpointId bp) {
  const std::size_t before = num_watches();
  std::erase_if(watches_, [bp](const Watch& w) { return w.bp == bp; });
  std::erase_if(notify_watches_,
                [bp](const NotifyWatch& w) { return w.bp == bp; });
  return before - num_watches();
}

void LinkedPredicateDetector::on_local_event(const LocalEvent& event) {
  // Collect satisfied watches first: callbacks may re-arm (a chain whose
  // next DP is also local) and must not invalidate the iteration.
  std::vector<Watch> fired;
  for (std::size_t i = 0; i < watches_.size();) {
    if (watches_[i].lp.first().matches(event)) {
      fired.push_back(std::move(watches_[i]));
      watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  for (Watch& watch : fired) {
    const LinkedPredicate rest = watch.lp.rest();
    if (rest.empty()) {
      DDBG_DEBUG() << to_string(self_) << " LP of bp "
                   << watch.bp.value() << " completed on "
                   << event.describe();
      if (callbacks_.on_trigger) {
        callbacks_.on_trigger(watch.bp, event, watch.monitor);
      }
      continue;
    }
    // The "[Σ - DPj] DPj" semantics need no bookkeeping: each process
    // simply waits for its own armed DP and ignores everything else.
    for (const ProcessId target : rest.first().involved_processes()) {
      if (callbacks_.forward) {
        callbacks_.forward(target, watch.bp, rest, watch.stage_index + 1,
                           watch.monitor);
      }
    }
  }

  for (const NotifyWatch& watch : notify_watches_) {
    if (watch.sp.matches(event) && callbacks_.on_notify) {
      callbacks_.on_notify(watch.bp, watch.term_index, event);
    }
  }
}

}  // namespace ddbg
