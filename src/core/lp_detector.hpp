// Linked-Predicate detection (section 3.6 of the paper), per-process.
//
//   Predicate-Marker-Sending Rule for p: send a predicate marker containing
//   the Linked Predicate to each process involved in the first DP.
//   Predicate-Marker-Receiving Rule for q: split off the first DP; when it
//   is met, if the remainder (newLP) is empty initiate the Halting
//   Algorithm, else forward a new predicate marker per the sending rule.
//
// The detector holds the armed "first DPs" for this process and evaluates
// them against the stream of local events.  The enclosing debug shim
// supplies the transport effects (forwarding markers, initiating halting)
// through callbacks, and — because a predicate can be satisfied in the
// middle of a user handler — *defers* those effects to the end of the
// handler so that halt markers are still the last thing a halting process
// sends (Lemma 2.2 depends on that).
//
// The LP grammar subsumes SPs and DPs (single-stage LPs), so this is the
// only detection algorithm needed; it also serves the ordered-conjunctive
// compilation and the unordered-conjunction notification watches.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "core/event.hpp"
#include "core/predicate.hpp"

namespace ddbg {

class LinkedPredicateDetector {
 public:
  struct Callbacks {
    // The last DP of an LP was satisfied here: initiate halting — or, for a
    // monitor-mode chain, just report — and tell the debugger which
    // breakpoint fired.
    std::function<void(BreakpointId, const LocalEvent& trigger, bool monitor)>
        on_trigger;
    // Forward the remainder LP to `target`, the next DP's involved process.
    std::function<void(ProcessId target, BreakpointId,
                       const LinkedPredicate& rest,
                       std::uint32_t next_stage_index, bool monitor)>
        forward;
    // Unordered-CP watch fired: notify the debugger.
    std::function<void(BreakpointId, std::uint32_t term_index,
                       const LocalEvent& trigger)>
        on_notify;
  };

  explicit LinkedPredicateDetector(ProcessId self, Callbacks callbacks);

  // Arm an LP whose first DP involves this process.  `lp` must be expanded
  // (no repeat counts).  stage_index counts stages already consumed by the
  // chain, for diagnostics.  monitor marks an abstract-event chain.
  void arm(BreakpointId bp, LinkedPredicate lp, std::uint32_t stage_index,
           bool monitor = false);

  // Arm a persistent unordered-CP notification watch.
  void arm_notify(BreakpointId bp, SimplePredicate sp,
                  std::uint32_t term_index);

  // Remove all watches for a breakpoint.  Returns how many were removed.
  std::size_t disarm(BreakpointId bp);

  // Evaluate all watches against a local event.  Satisfied LP watches are
  // consumed (one-shot, per the marker semantics); notify watches persist.
  void on_local_event(const LocalEvent& event);

  [[nodiscard]] std::size_t num_watches() const {
    return watches_.size() + notify_watches_.size();
  }

 private:
  struct Watch {
    BreakpointId bp;
    LinkedPredicate lp;  // expanded; first stage is what we wait for
    std::uint32_t stage_index;
    bool monitor;
  };
  struct NotifyWatch {
    BreakpointId bp;
    SimplePredicate sp;
    std::uint32_t term_index;
  };

  ProcessId self_;
  Callbacks callbacks_;
  std::vector<Watch> watches_;
  std::vector<NotifyWatch> notify_watches_;
};

}  // namespace ddbg
