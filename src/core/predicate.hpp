// Breakpoint predicates (section 3 of the paper).
//
//   Simple Predicate (SP)       — one process's behaviour or state
//   Disjunctive Predicate (DP)  — SP [∨ SP]…, satisfied when any SP is
//   Linked Predicate (LP)       — DP [→ DP]…, a happened-before chain;
//                                 DPi → DPj means the regular expression
//                                 DPi [Σ−DPj] DPj (section 3.4)
//   Conjunctive Predicate (CP)  — SP [∧ SP]…, with the ordered-SCP
//                                 interpretation compiled to LPs and the
//                                 unordered interpretation gathered at the
//                                 debugger (section 3.5)
//
// The (SP)^i repetition shorthand of section 3.5 is represented as a stage
// repeat count and expanded into consecutive stages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialization.hpp"
#include "core/event.hpp"

namespace ddbg {

enum class CompareOp : std::uint8_t {
  kNone = 0,  // no value comparison; any occurrence matches
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

[[nodiscard]] constexpr const char* to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kNone: return "";
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

[[nodiscard]] bool compare_values(std::int64_t lhs, CompareOp op,
                                  std::int64_t rhs);

// A predicate local to one process.
struct SimplePredicate {
  ProcessId process;
  LocalEventKind kind = LocalEventKind::kUserEvent;
  // Name filter for user events / procedures / variables; empty matches any.
  std::string name;
  // Optional value comparison (variables: new value; user events: value).
  CompareOp op = CompareOp::kNone;
  std::int64_t value = 0;
  // Optional channel filter for message events.
  ChannelId channel_filter;

  // Does this SP match a local event on its process?
  [[nodiscard]] bool matches(const LocalEvent& event) const;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<SimplePredicate> decode(ByteReader& reader);
  [[nodiscard]] std::string describe() const;

  // ---- convenience constructors ----
  [[nodiscard]] static SimplePredicate user_event(ProcessId p,
                                                  std::string name);
  [[nodiscard]] static SimplePredicate procedure_entered(ProcessId p,
                                                         std::string name);
  [[nodiscard]] static SimplePredicate var_compare(ProcessId p,
                                                   std::string name,
                                                   CompareOp op,
                                                   std::int64_t value);
  [[nodiscard]] static SimplePredicate message_sent(ProcessId p);
  [[nodiscard]] static SimplePredicate message_received(ProcessId p);
  [[nodiscard]] static SimplePredicate process_terminated(ProcessId p);
};

// SP [∨ SP]…
struct DisjunctivePredicate {
  std::vector<SimplePredicate> alternatives;

  [[nodiscard]] bool matches(const LocalEvent& event) const;
  // Distinct processes that must watch for this DP.
  [[nodiscard]] std::vector<ProcessId> involved_processes() const;
  // The SPs local to one process (the shim arms only those).
  [[nodiscard]] bool involves(ProcessId p) const;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<DisjunctivePredicate> decode(ByteReader& reader);
  [[nodiscard]] std::string describe() const;
};

// DP [→ DP]… with per-stage repeat counts.
struct LinkedPredicate {
  struct Stage {
    DisjunctivePredicate dp;
    std::uint32_t repeat = 1;  // (DP)^repeat shorthand
  };

  std::vector<Stage> stages;

  [[nodiscard]] bool empty() const { return stages.empty(); }
  // Expand repeat counts into consecutive repeat-1 stages.
  [[nodiscard]] LinkedPredicate expanded() const;
  // The LP with the first stage removed (the "newLP" of section 3.6).
  // Must be called on an expanded LP.
  [[nodiscard]] LinkedPredicate rest() const;
  [[nodiscard]] const DisjunctivePredicate& first() const;
  // Total number of stages after expansion.
  [[nodiscard]] std::size_t depth() const;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<LinkedPredicate> decode(ByteReader& reader);
  [[nodiscard]] Bytes encode_to_bytes() const;
  [[nodiscard]] static Result<LinkedPredicate> decode_from_bytes(
      std::span<const std::uint8_t> data);
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] static LinkedPredicate single(DisjunctivePredicate dp);
  [[nodiscard]] static LinkedPredicate chain(
      std::vector<DisjunctivePredicate> dps);
};

// SP [∧ SP]…
struct ConjunctivePredicate {
  std::vector<SimplePredicate> terms;

  [[nodiscard]] std::vector<ProcessId> involved_processes() const;

  // Ordered-SCP interpretation (section 3.5): one LP per permutation of the
  // terms; the breakpoint fires when any permutation's chain completes.
  // Fails for more than `kMaxOrderedTerms` terms (factorial blow-up).
  static constexpr std::size_t kMaxOrderedTerms = 5;
  [[nodiscard]] Result<std::vector<LinkedPredicate>> compile_ordered() const;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<ConjunctivePredicate> decode(ByteReader& reader);
  [[nodiscard]] std::string describe() const;
};

// How a conjunctive breakpoint should be interpreted (section 3.5).
enum class ConjunctionMode : std::uint8_t {
  kOrdered = 0,    // detectable: compiled to Linked Predicates
  kUnordered = 1,  // best-effort gather at the debugger (provably late)
};

// What satisfaction of a breakpoint does.  kHalt is the paper's breakpoint
// proper; kMonitor turns the same detection machinery into the EDL-style
// abstract-event recognizer of section 4 (Bates & Wileden): the debugger
// records the occurrence and re-arms the chain instead of halting.
enum class BreakpointAction : std::uint8_t {
  kHalt = 0,
  kMonitor = 1,
};

// A complete breakpoint specification as registered with the debugger.
struct BreakpointSpec {
  enum class Kind : std::uint8_t {
    kLinked = 0,       // covers SP and DP as single-stage LPs
    kConjunctive = 1,
  };

  Kind kind = Kind::kLinked;
  LinkedPredicate linked;
  ConjunctivePredicate conjunctive;
  ConjunctionMode mode = ConjunctionMode::kOrdered;
  BreakpointAction action = BreakpointAction::kHalt;

  void encode(ByteWriter& writer) const;
  [[nodiscard]] static Result<BreakpointSpec> decode(ByteReader& reader);
  [[nodiscard]] std::string describe() const;
};

}  // namespace ddbg
