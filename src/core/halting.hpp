// The Halting Algorithm (section 2.2 of the paper), per-process engine.
//
//   Marker-Sending Rule for a process p:
//     Increment last_halt_id; Halt Routine(p)
//   Marker-Receiving Rule for a process q, on a halt marker along c:
//     if halt_id > last_halt_id: update last_halt_id; Halt Routine(q)
//     else ignore
//   Halt Routine(x):
//     for each outgoing channel c: send halt marker (halt_id=last_halt_id);
//     Halt.
//
// Section 2.2.4's extension is included: each process appends its name to
// the marker's halt_path before forwarding, so a received marker describes
// which processes already halted.
//
// Beyond the paper's pseudocode, a practical debugger needs to know *when
// the halted global state is complete* and how to *resume*.  Both fall out
// of Lemma 2.2: after q halts, the in-flight contents of an incoming
// channel are exactly the messages that arrive before that channel's halt
// marker.  The engine therefore buffers post-halt arrivals, closes each
// channel's state when its marker arrives, reports completion once every
// incoming channel is closed, and on resume replays the buffered messages
// in arrival order (they were "in the channel").
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "core/global_state.hpp"
#include "net/process.hpp"

namespace ddbg {

class HaltingEngine {
 public:
  struct Callbacks {
    // Capture the application state at the instant of halting (Lemma 2.1:
    // this is the state the C&L algorithm would have recorded).
    std::function<ProcessSnapshot()> capture_state;
    // The process just halted (before channel states are complete).
    std::function<void(HaltId, const std::vector<ProcessId>& halt_path)>
        on_halt;
    // All incoming channels delivered their markers: the local contribution
    // to S_h is complete.
    std::function<void(const ProcessSnapshot&)> on_complete;
  };

  // `suppress_control_echo`: when a wave was learned from a control channel
  // (i.e. from the debugger tier), do not echo its marker back onto control
  // out-channels — the tier already knows the wave.  Markers on application
  // channels are never suppressed: the out-channel p->q is q's in-channel,
  // and q needs that marker to close its channel state (Lemma 2.2).  Set to
  // false to reproduce the original flood behaviour for equivalence tests.
  HaltingEngine(ProcessId self, const Topology* topology, Callbacks callbacks,
                bool suppress_control_echo = true);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t last_halt_id() const { return last_halt_id_; }
  [[nodiscard]] HaltId current_wave() const {
    return halted_ ? HaltId(last_halt_id_) : HaltId();
  }
  [[nodiscard]] bool complete() const;

  // Spontaneous halting (Marker-Sending Rule).  No-op if already halted.
  void initiate(ProcessContext& ctx);

  // Marker-Receiving Rule.  `path` is the marker's accumulated halt path.
  void on_halt_marker(ProcessContext& ctx, ChannelId in,
                      const HaltMarkerData& data);

  // Offer a non-control, non-halt-marker message that arrived while this
  // process may be halted.  Returns true if the engine consumed (buffered)
  // it; false if the process is running and the message should be handled
  // normally.
  [[nodiscard]] bool intercept_message(ChannelId in, const Message& message);

  // Same for timer firings: buffered while halted, replayed on resume.
  [[nodiscard]] bool intercept_timer(TimerId timer);

  struct ResumeData {
    // Buffered (channel, message) pairs in arrival order.  Includes the
    // pending channel-state messages and anything that arrived after a
    // channel's marker (e.g. a halt marker for a *later* wave).
    std::vector<std::pair<ChannelId, Message>> messages;
    std::vector<TimerId> timers;
  };

  // Leave the halted state.  The caller (debug shim) must re-dispatch the
  // returned messages through its normal receive path, in order.
  [[nodiscard]] ResumeData resume();

  // Read access for the debugger/tests while halted.
  [[nodiscard]] const ProcessSnapshot& snapshot() const;

 private:
  void halt_routine(ProcessContext& ctx, bool from_control);
  // Switch an already-halted process onto a newer wave: restart the wave
  // bookkeeping and forward the new markers without re-running the Halt
  // Routine (which asserts it is never entered twice).
  void adopt_wave(ProcessContext& ctx, const HaltMarkerData& data,
                  bool from_control);
  // Send this wave's markers on every outgoing channel (minus suppressed
  // control echoes), appending self_ to `base_path` (section 2.2.4).
  void forward_markers(ProcessContext& ctx,
                       const std::vector<ProcessId>& base_path,
                       bool from_control);
  void check_complete();
  [[nodiscard]] bool is_app_channel(ChannelId c) const;
  // Find-or-create the sparse channel-state slot for `in` and record one
  // in-flight payload.
  void record_channel_message(ChannelId in, const Bytes& payload);

  ProcessId self_;
  const Topology* topology_;
  Callbacks callbacks_;
  bool suppress_control_echo_ = true;

  std::uint64_t last_halt_id_ = 0;  // initially zero, per the paper
  bool halted_ = false;
  bool completion_reported_ = false;

  // While halted: the snapshot under assembly (state captured at halt,
  // channel states appended as messages arrive).
  ProcessSnapshot snapshot_;
  // Incoming channels whose halt marker for the current wave has arrived.
  std::unordered_set<ChannelId> channels_done_;
  // Sparse index into snapshot_.in_channels: slots are created on the first
  // recorded payload, so an idle wave costs O(active channels), not
  // O(topology channels).
  std::unordered_map<std::uint32_t, std::size_t> channel_slot_;

  std::vector<std::pair<ChannelId, Message>> buffered_;
  std::vector<TimerId> buffered_timers_;
};

}  // namespace ddbg
