#include "core/debug_shim.hpp"

#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ddbg {

namespace {

// Arm / notify latency spans are keyed by (breakpoint, process) so the
// debugger's span_begin at arm time pairs with this shim's span_end.
std::uint64_t bp_span_key(BreakpointId bp, ProcessId p) {
  return obs::MetricsRegistry::key(bp.value(), p.value());
}

}  // namespace

// Context handed to the *user* process: interposes on sends (clock
// stamping, send events) and forwards everything else.
class DebugShim::ShimContext final : public ProcessContext {
 public:
  explicit ShimContext(DebugShim& shim) : shim_(shim) {}

  void bind(ProcessContext* outer) { outer_ = outer; }

  [[nodiscard]] ProcessId self() const override { return shim_.self_; }
  [[nodiscard]] TimePoint now() const override { return outer_->now(); }
  [[nodiscard]] const Topology& topology() const override {
    return outer_->topology();
  }

  void send(ChannelId channel, Message message) override {
    // User code sends application messages only; anything else is the
    // debugging system's business.
    DDBG_ASSERT(message.kind == MessageKind::kApplication,
                "user processes may only send application messages");
    if (shim_.options_.stamp_vector_clocks) {
      shim_.vclock_.tick(shim_.self_);
      message.vclock = shim_.vclock_;
    }
    message.lamport = shim_.lamport_.on_send();
    message.message_id = shim_.next_message_id();

    LocalEvent event;
    event.kind = LocalEventKind::kMessageSent;
    event.channel = channel;
    event.value = static_cast<std::int64_t>(message.payload.size());
    event.message_id = message.message_id;
    event.lamport = message.lamport;
    event.vclock = shim_.vclock_;

    outer_->send(channel, std::move(message));
    // Event emitted after the message is on the wire: if the send completes
    // a Linked Predicate, the halt markers (sent at end of handler) follow
    // the message on every channel.
    shim_.emit_event(std::move(event));
  }

  TimerId set_timer(Duration delay) override {
    return shim_.interpose_set_timer(*outer_, delay);
  }
  void cancel_timer(TimerId timer) override {
    shim_.interpose_cancel_timer(*outer_, timer);
  }
  void run_ordered(std::function<void()> fn) override {
    outer_->run_ordered(std::move(fn));
  }
  [[nodiscard]] Rng& rng() override { return outer_->rng(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const override {
    return outer_->metrics();
  }

  void stop_self() override {
    LocalEvent event;
    event.kind = LocalEventKind::kProcessTerminated;
    event.lamport = shim_.lamport_.tick();
    if (shim_.options_.stamp_vector_clocks) {
      shim_.vclock_.tick(shim_.self_);
    }
    event.vclock = shim_.vclock_;
    shim_.emit_event(std::move(event));
    outer_->stop_self();
  }

 private:
  DebugShim& shim_;
  ProcessContext* outer_ = nullptr;
};

DebugShim::DebugShim(ProcessId self, ProcessPtr user, Options options)
    : self_(self),
      user_(std::move(user)),
      options_(std::move(options)),
      detector_(self,
                LinkedPredicateDetector::Callbacks{
                    [this](BreakpointId bp, const LocalEvent& event,
                           bool monitor) {
                      pending_triggers_.push_back(
                          PendingTrigger{bp, event.describe(), monitor});
                    },
                    [this](ProcessId target, BreakpointId bp,
                           const LinkedPredicate& rest,
                           std::uint32_t stage_index, bool monitor) {
                      pending_forwards_.push_back(PendingForward{
                          target, bp, rest, stage_index, monitor});
                    },
                    [this](BreakpointId bp, std::uint32_t term_index,
                           const LocalEvent&) {
                      pending_notifies_.push_back(
                          PendingNotify{bp, term_index});
                    }}) {
  DDBG_ASSERT(user_ != nullptr, "DebugShim needs a user process");
  shim_ctx_ = std::make_unique<ShimContext>(*this);
  if (auto* debuggable = dynamic_cast<Debuggable*>(user_.get())) {
    debuggable->attach_debug(this);
  }
}

DebugShim::DebugShim(ProcessId self, ProcessPtr user)
    : DebugShim(self, std::move(user), Options{}) {}

DebugShim::~DebugShim() = default;

std::uint64_t DebugShim::next_message_id() {
  // Globally unique without coordination: high bits carry the sender.
  return (static_cast<std::uint64_t>(self_.value()) + 1) << 40 |
         ++send_counter_;
}

ProcessSnapshot DebugShim::capture_state() const {
  ProcessSnapshot snapshot;
  snapshot.process = self_;
  snapshot.state = user_->snapshot_state();
  snapshot.description = user_->describe_state();
  snapshot.vclock = vclock_;
  return snapshot;
}

void DebugShim::bind(ProcessContext& ctx) {
  current_ctx_ = &ctx;
  shim_ctx_->bind(&ctx);
}

void DebugShim::on_start(ProcessContext& ctx) {
  bind(ctx);
  topology_ = &ctx.topology();
  DDBG_ASSERT(ctx.self() == self_, "shim bound to the wrong process slot");

  const bool suppress = options_.suppress_redundant_markers;
  halting_.emplace(
      self_, topology_,
      HaltingEngine::Callbacks{
          [this] { return capture_state(); },
          [this](HaltId wave, const std::vector<ProcessId>&) {
            if (options_.on_halted) {
              notify_ordered([this, wave] { options_.on_halted(wave); });
            }
          },
          [this](const ProcessSnapshot& snapshot) {
            DDBG_ASSERT(current_ctx_ != nullptr,
                        "halt completion outside a handler");
            if (topology_->has_debugger()) {
              send_to_debugger(*current_ctx_,
                               Command::halt_report(
                                   self_, halting_->last_halt_id(), snapshot));
            }
            if (options_.local_halt_report) {
              notify_ordered([this, wave = halting_->last_halt_id(),
                              snapshot] {
                options_.local_halt_report(self_, wave, snapshot);
              });
            }
          }},
      suppress);
  snapshot_.emplace(
      self_, topology_,
      SnapshotEngine::Callbacks{
          [this] { return capture_state(); },
          [this](const ProcessSnapshot& snapshot) {
            DDBG_ASSERT(current_ctx_ != nullptr,
                        "recording completion outside a handler");
            if (topology_->has_debugger()) {
              send_to_debugger(
                  *current_ctx_,
                  Command::snapshot_report(
                      self_, snapshot_->last_snapshot_id(), snapshot));
            }
            if (options_.local_snapshot_report) {
              notify_ordered([this, id = snapshot_->last_snapshot_id(),
                              snapshot] {
                options_.local_snapshot_report(self_, id, snapshot);
              });
            }
          }},
      suppress);

  {
    LocalEvent event;
    event.kind = LocalEventKind::kProcessStarted;
    event.lamport = lamport_.tick();
    if (options_.stamp_vector_clocks) vclock_.tick(self_);
    event.vclock = vclock_;
    emit_event(std::move(event));
  }
  for (const ChannelId c : topology_->out_channels(self_)) {
    if (topology_->channel(c).is_control) continue;
    LocalEvent event;
    event.kind = LocalEventKind::kChannelCreated;
    event.channel = c;
    event.lamport = lamport_.tick();
    if (options_.stamp_vector_clocks) vclock_.tick(self_);
    event.vclock = vclock_;
    emit_event(std::move(event));
  }

  user_->on_start(*shim_ctx_);
  flush_pending(ctx);
  current_ctx_ = nullptr;
}

void DebugShim::on_message(ProcessContext& ctx, ChannelId in,
                           Message message) {
  bind(ctx);
  dispatch(ctx, in, std::move(message));
  flush_pending(ctx);
  current_ctx_ = nullptr;
}

void DebugShim::on_timer(ProcessContext& ctx, TimerId timer) {
  bind(ctx);
  if (!halting_->intercept_timer(timer)) {
    fire_user_timer(timer);
    flush_pending(ctx);
  }
  current_ctx_ = nullptr;
}

TimerId DebugShim::interpose_set_timer(ProcessContext& outer, Duration delay) {
  if (options_.replay_gate) {
    // Replay: the timer never reaches the substrate — the driver fires it
    // by creation ordinal.  Hand back the recorded run's TimerId so user
    // state that stores timer ids reproduces byte-for-byte; synthetic ids
    // past the script's end keep a divergent replay running.
    const std::uint64_t ordinal = timers_created_++;
    const TimerId id =
        ordinal < timer_script_.size()
            ? timer_script_[ordinal]
            : TimerId(0x80000000U + static_cast<std::uint32_t>(ordinal));
    created_timers_.push_back(id);
    timer_ordinal_by_id_[id.value()] = ordinal;
    return id;
  }
  const TimerId id = outer.set_timer(delay);
  if (options_.replay_record != nullptr) {
    const std::uint64_t ordinal = timers_created_++;
    options_.replay_record->record_timer_set(self_, ordinal, id);
    timer_ordinal_by_id_[id.value()] = ordinal;
  }
  return id;
}

void DebugShim::interpose_cancel_timer(ProcessContext& outer, TimerId timer) {
  if (options_.replay_gate) {
    auto it = timer_ordinal_by_id_.find(timer.value());
    if (it != timer_ordinal_by_id_.end()) {
      cancelled_timer_ordinals_.insert(it->second);
      timer_ordinal_by_id_.erase(it);
    }
    return;
  }
  if (options_.replay_record != nullptr) {
    timer_ordinal_by_id_.erase(timer.value());
  }
  outer.cancel_timer(timer);
}

void DebugShim::fire_user_timer(TimerId timer) {
  if (options_.replay_record != nullptr) {
    auto it = timer_ordinal_by_id_.find(timer.value());
    if (it != timer_ordinal_by_id_.end()) {
      options_.replay_record->record_timer_fire(self_, it->second);
      timer_ordinal_by_id_.erase(it);
    }
  }
  user_->on_timer(*shim_ctx_, timer);
}

void DebugShim::dispatch(ProcessContext& ctx, ChannelId in, Message message) {
  // Control traffic bypasses everything: a halted process still listens to
  // its debugger (section 2.2.3).
  if (message.kind == MessageKind::kControl) {
    auto command = Command::decode(message.payload);
    if (!command.ok()) {
      DDBG_ERROR() << to_string(self_)
                   << " bad control message: " << command.error().to_string();
      return;
    }
    handle_control(ctx, command.value());
    return;
  }

  if (message.kind == MessageKind::kHaltMarker) {
    DDBG_ASSERT(message.halt.has_value(), "halt marker without data");
    // Always the engine's call — including a marker for a *later* wave
    // while still halted in the current one, which the engine adopts in
    // place (overlapping initiators must converge on the newest wave, not
    // leave its markers wedged in the channel until resume).
    halting_->on_halt_marker(ctx, in, *message.halt);
    // Replay: everything still gated was logically in its channel when the
    // marker closed it — drain it into the engine's channel-state record.
    maybe_flush_gate();
    return;
  }

  // Everything else is application-era traffic: while halted it stays in
  // the channel (the halting engine buffers it and records channel state).
  if (halting_->intercept_message(in, message)) return;

  // Replay gate: hold application deliveries until the driver releases
  // them in the logged order.  Markers pass through — their interleaving
  // is re-derived, not logged (see replay_log.hpp).
  if (options_.replay_gate && !gate_release_in_progress_ &&
      message.kind == MessageKind::kApplication) {
    gate_.emplace_back(in, std::move(message));
    return;
  }

  switch (message.kind) {
    case MessageKind::kSnapshotMarker:
      DDBG_ASSERT(message.snapshot.has_value(), "snapshot marker w/o data");
      snapshot_->on_marker(ctx, in, *message.snapshot);
      return;
    case MessageKind::kPredicateMarker: {
      DDBG_ASSERT(message.predicate.has_value(), "predicate marker w/o data");
      auto lp = LinkedPredicate::decode_from_bytes(
          message.predicate->encoded_predicate);
      if (!lp.ok()) {
        DDBG_ERROR() << to_string(self_)
                     << " bad predicate marker: " << lp.error().to_string();
        return;
      }
      if (!lp.value().first().involves(self_)) {
        DDBG_WARN() << to_string(self_)
                    << " received predicate marker not involving it";
        return;
      }
      detector_.arm(message.predicate->breakpoint, std::move(lp).value(),
                    message.predicate->stage_index,
                    message.predicate->monitor);
      if (auto* m = ctx.metrics()) {
        m->span_end(obs::Span::kArm,
                    bp_span_key(message.predicate->breakpoint, self_),
                    ctx.now());
      }
      if (options_.on_armed) {
        notify_ordered([this, bp = message.predicate->breakpoint] {
          options_.on_armed(self_, bp);
        });
      }
      return;
    }
    case MessageKind::kApplication: {
      // The delivery ordinal counts messages actually handed to the user
      // handler on this channel — the replay schedule's unit.
      const std::uint64_t delivery_ordinal = delivery_ordinals_[in.value()]++;
      if (options_.replay_record != nullptr) {
        options_.replay_record->record_delivery(
            self_, in, delivery_ordinal,
            replay_payload_hash(message.payload), message.payload.size());
      }
      snapshot_->observe_app_message(in, message);
      if (options_.stamp_vector_clocks) {
        vclock_.on_receive(self_, message.vclock);
      }
      const std::uint64_t receive_lamport =
          lamport_.on_receive(message.lamport);

      LocalEvent event;
      event.kind = LocalEventKind::kMessageReceived;
      event.channel = in;
      event.value = static_cast<std::int64_t>(message.payload.size());
      event.message_id = message.message_id;
      event.lamport = receive_lamport;
      event.vclock = vclock_;

      // The receive event precedes the state changes it causes, so it is
      // emitted before the handler runs (any halting it triggers is
      // deferred to the end of the handler regardless, so the captured
      // state still reflects the completed receive).
      emit_event(std::move(event));
      user_->on_message(*shim_ctx_, in, std::move(message));
      return;
    }
    default:
      DDBG_WARN() << to_string(self_) << " unhandled message kind";
  }
}

void DebugShim::handle_control(ProcessContext& ctx, const Command& command) {
  switch (command.kind) {
    case CommandKind::kArmPredicate: {
      auto lp = LinkedPredicate::decode_from_bytes(command.predicate);
      if (!lp.ok()) {
        DDBG_ERROR() << to_string(self_)
                     << " bad arm_predicate: " << lp.error().to_string();
        return;
      }
      detector_.arm(command.breakpoint, std::move(lp).value(),
                    command.stage_index, command.monitor);
      if (auto* m = ctx.metrics()) {
        m->span_end(obs::Span::kArm, bp_span_key(command.breakpoint, self_),
                    ctx.now());
      }
      if (options_.on_armed) {
        notify_ordered([this, bp = command.breakpoint] {
          options_.on_armed(self_, bp);
        });
      }
      return;
    }
    case CommandKind::kArmNotify: {
      ByteReader reader(command.predicate);
      auto sp = SimplePredicate::decode(reader);
      if (!sp.ok()) {
        DDBG_ERROR() << to_string(self_)
                     << " bad arm_notify: " << sp.error().to_string();
        return;
      }
      detector_.arm_notify(command.breakpoint, std::move(sp).value(),
                           command.stage_index);
      if (auto* m = ctx.metrics()) {
        m->span_end(obs::Span::kArm, bp_span_key(command.breakpoint, self_),
                    ctx.now());
      }
      if (options_.on_armed) {
        notify_ordered([this, bp = command.breakpoint] {
          options_.on_armed(self_, bp);
        });
      }
      return;
    }
    case CommandKind::kDisarmBreakpoint:
      detector_.disarm(command.breakpoint);
      return;
    case CommandKind::kResume:
      if (halted() && halting_->last_halt_id() == command.wave_id) {
        do_resume(ctx, command.wave_id);
      }
      return;
    case CommandKind::kQueryState:
      send_to_debugger(ctx, Command::state_report(self_, capture_state()));
      return;
    default:
      DDBG_WARN() << to_string(self_) << " unexpected control command "
                  << to_string(command.kind);
  }
}

void DebugShim::do_resume(ProcessContext& ctx, std::uint64_t wave) {
  HaltingEngine::ResumeData data = halting_->resume();
  if (options_.on_resumed) {
    notify_ordered([this, wave] { options_.on_resumed(HaltId(wave)); });
  }

  // Replay everything that stayed "in the channels" while halted, in
  // arrival order, through the normal dispatch paths.  A halt marker for a
  // later wave will halt us again mid-replay; the rest of the buffer is
  // then re-buffered by the engine, preserving order.
  for (auto& [channel, message] : data.messages) {
    dispatch(ctx, channel, std::move(message));
  }
  for (const TimerId timer : data.timers) {
    if (halting_->intercept_timer(timer)) continue;
    fire_user_timer(timer);
  }
}

void DebugShim::event(std::string_view name, std::int64_t value) {
  LocalEvent event;
  event.kind = LocalEventKind::kUserEvent;
  event.name = std::string(name);
  event.value = value;
  event.lamport = lamport_.tick();
  if (options_.stamp_vector_clocks) vclock_.tick(self_);
  event.vclock = vclock_;
  emit_event(std::move(event));
}

void DebugShim::enter_procedure(std::string_view name) {
  LocalEvent event;
  event.kind = LocalEventKind::kProcedureEntered;
  event.name = std::string(name);
  event.lamport = lamport_.tick();
  if (options_.stamp_vector_clocks) vclock_.tick(self_);
  event.vclock = vclock_;
  emit_event(std::move(event));
}

void DebugShim::set_var(std::string_view name, std::int64_t value) {
  vars_[std::string(name)] = value;
  LocalEvent event;
  event.kind = LocalEventKind::kStateChange;
  event.name = std::string(name);
  event.value = value;
  event.lamport = lamport_.tick();
  if (options_.stamp_vector_clocks) vclock_.tick(self_);
  event.vclock = vclock_;
  emit_event(std::move(event));
}

std::int64_t DebugShim::var(const std::string& name) const {
  auto it = vars_.find(name);
  return it != vars_.end() ? it->second : 0;
}

void DebugShim::notify_ordered(std::function<void()> fn) {
  if (current_ctx_ != nullptr) {
    current_ctx_->run_ordered(std::move(fn));
  } else {
    fn();
  }
}

void DebugShim::emit_event(LocalEvent event) {
  event.process = self_;
  event.local_seq = local_seq_++;
  if (current_ctx_ != nullptr) event.when = current_ctx_->now();
  if (options_.trace_sink) {
    // The sink typically appends to a shared analysis trace; routing it
    // through run_ordered keeps the recorded interleaving identical across
    // execution modes (the parallel simulator replays these at window
    // commit, in sequential-equivalent order).
    notify_ordered([sink = &options_.trace_sink, event] { (*sink)(event); });
  }
  detector_.on_local_event(event);
}

void DebugShim::flush_pending(ProcessContext& ctx) {
  // Notifications and hit reports go out before halt markers so the
  // debugger learns *why* before it sees the wave arrive.
  for (const PendingNotify& notify : pending_notifies_) {
    send_to_debugger(
        ctx, Command::notify_satisfied(self_, notify.bp, notify.term_index));
  }
  pending_notifies_.clear();

  auto forwards = std::move(pending_forwards_);
  pending_forwards_.clear();
  for (PendingForward& forward : forwards) {
    if (forward.target == self_) {
      // Next DP is (also) local: re-arm directly.
      detector_.arm(forward.bp, std::move(forward.rest), forward.stage_index,
                    forward.monitor);
      continue;
    }
    const Bytes encoded = forward.rest.encode_to_bytes();
    const std::optional<ChannelId> channel =
        options_.route_markers_via_debugger && topology_->has_debugger()
            ? std::optional<ChannelId>{}
            : topology_->channel_between(self_, forward.target);
    if (channel) {
      ctx.send(*channel,
               Message::predicate_marker(forward.bp, encoded,
                                         forward.stage_index,
                                         forward.monitor));
    } else if (topology_->has_debugger()) {
      send_to_debugger(ctx, Command::route_marker(self_, forward.target,
                                                  forward.bp, encoded,
                                                  forward.stage_index,
                                                  forward.monitor));
    } else {
      DDBG_WARN() << to_string(self_) << " cannot route predicate marker to "
                  << to_string(forward.target)
                  << " (no channel, no debugger)";
    }
  }

  auto triggers = std::move(pending_triggers_);
  pending_triggers_.clear();
  for (PendingTrigger& trigger : triggers) {
    // Trace predicate-hit -> debugger-notified latency; the matching
    // span_end runs when the debugger records the hit.
    if (auto* m = ctx.metrics()) {
      m->span_begin(obs::Span::kBreakpointNotify,
                    bp_span_key(trigger.bp, self_), ctx.now());
    }
    send_to_debugger(
        ctx, Command::breakpoint_hit(self_, trigger.bp, trigger.description));
    // Halting breakpoints initiate the Halting Algorithm (a no-op if a
    // concurrent trigger or an incoming marker already halted us);
    // monitor-mode chains only report — the debugger re-arms them.
    if (!trigger.monitor) {
      halting_->initiate(ctx);
      maybe_flush_gate();
    }
  }
}

void DebugShim::send_to_debugger(ProcessContext& ctx, const Command& command) {
  if (!topology_->has_debugger()) return;
  ctx.send(topology_->control_from(self_), Message::control(command.encode()));
}

void DebugShim::initiate_halt(ProcessContext& ctx) {
  bind(ctx);
  halting_->initiate(ctx);
  maybe_flush_gate();
  current_ctx_ = nullptr;
}

void DebugShim::maybe_flush_gate() {
  if (!options_.replay_gate || !halting_.has_value() || !halting_->halted() ||
      gate_.empty()) {
    return;
  }
  // Halt entry: every gated message is still logically in its channel (the
  // per-channel FIFO simulator delivered it before this wave's marker).
  // Hand the backlog to the halting engine in arrival order — it becomes
  // the recorded channel state of the cut and is redelivered on resume,
  // exactly what Lemma 2.2 credits to the channels.
  std::deque<std::pair<ChannelId, Message>> pending = std::move(gate_);
  gate_.clear();
  for (auto& [channel, message] : pending) {
    const bool buffered = halting_->intercept_message(channel, message);
    DDBG_ASSERT(buffered, "gate flushed while not halted");
  }
}

std::size_t DebugShim::replay_gate_depth(ChannelId in) const {
  std::size_t depth = 0;
  for (const auto& [channel, message] : gate_) {
    if (channel == in) ++depth;
  }
  return depth;
}

void DebugShim::replay_preload_timer_ids(std::vector<TimerId> ids) {
  timer_script_ = std::move(ids);
}

std::uint64_t DebugShim::replay_deliveries(ChannelId in) const {
  auto it = delivery_ordinals_.find(in.value());
  return it != delivery_ordinals_.end() ? it->second : 0;
}

bool DebugShim::replay_release(ProcessContext& ctx, ChannelId in,
                               std::uint64_t ordinal,
                               std::uint64_t expected_hash) {
  auto it = gate_.begin();
  while (it != gate_.end() && it->first != in) ++it;
  if (it == gate_.end()) return false;
  Message message = std::move(it->second);
  gate_.erase(it);

  const auto seen = delivery_ordinals_.find(in.value());
  const std::uint64_t next =
      seen != delivery_ordinals_.end() ? seen->second : 0;
  if (next != ordinal ||
      replay_payload_hash(message.payload) != expected_hash) {
    if (auto* m = ctx.metrics()) m->on_replay_divergence();
  }

  bind(ctx);
  gate_release_in_progress_ = true;
  dispatch(ctx, in, std::move(message));
  gate_release_in_progress_ = false;
  flush_pending(ctx);
  if (auto* m = ctx.metrics()) m->on_replay_delivery_replayed();
  current_ctx_ = nullptr;
  return true;
}

bool DebugShim::replay_fire_timer(ProcessContext& ctx, std::uint64_t ordinal) {
  if (ordinal >= created_timers_.size() ||
      cancelled_timer_ordinals_.count(ordinal) != 0) {
    if (auto* m = ctx.metrics()) m->on_replay_divergence();
    return false;
  }
  const TimerId timer = created_timers_[ordinal];
  bind(ctx);
  if (!halting_->intercept_timer(timer)) {
    fire_user_timer(timer);
    flush_pending(ctx);
  }
  if (auto* m = ctx.metrics()) m->on_replay_timer_replayed();
  current_ctx_ = nullptr;
  return true;
}

void DebugShim::initiate_snapshot(ProcessContext& ctx) {
  bind(ctx);
  snapshot_->initiate(ctx);
  current_ctx_ = nullptr;
}

std::vector<ProcessPtr> wrap_in_shims(const Topology& topology,
                                      std::vector<ProcessPtr> users,
                                      DebugShim::Options options) {
  DDBG_ASSERT(users.size() == topology.num_user_processes(),
              "one user process per non-debugger topology slot");
  std::vector<ProcessPtr> wrapped;
  wrapped.reserve(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    wrapped.push_back(std::make_unique<DebugShim>(
        ProcessId(static_cast<std::uint32_t>(i)), std::move(users[i]),
        options));
  }
  return wrapped;
}

std::vector<ProcessPtr> wrap_in_shims(const Topology& topology,
                                      std::vector<ProcessPtr> users) {
  return wrap_in_shims(topology, std::move(users), DebugShim::Options{});
}

}  // namespace ddbg
