#include "baselines/central_hub.hpp"

#include "common/logging.hpp"
#include "common/serialization.hpp"

namespace ddbg {

namespace {

Bytes envelope(ChannelId original_channel, const Bytes& payload) {
  ByteWriter writer;
  writer.u32(original_channel.value());
  writer.bytes(payload);
  return std::move(writer).take();
}

struct Unwrapped {
  ChannelId original_channel;
  Bytes payload;
};

Result<Unwrapped> unwrap(const Bytes& data) {
  ByteReader reader(data);
  auto channel = reader.u32();
  if (!channel.ok()) return channel.error();
  auto payload = reader.bytes();
  if (!payload.ok()) return payload.error();
  return Unwrapped{ChannelId(channel.value()), std::move(payload).value()};
}

}  // namespace

HubTopology make_hub_topology(const Topology& user_topology) {
  HubTopology info;
  info.topology = user_topology;
  info.user_topology = user_topology;
  info.hub = info.topology.add_process();
  const std::uint32_t users = user_topology.num_processes();
  info.to_hub.reserve(users);
  info.from_hub.reserve(users);
  for (std::uint32_t i = 0; i < users; ++i) {
    info.to_hub.push_back(info.topology.add_channel(ProcessId(i), info.hub));
    info.from_hub.push_back(info.topology.add_channel(info.hub, ProcessId(i)));
  }
  return info;
}

void HubRouterProcess::on_message(ProcessContext& ctx, ChannelId /*in*/,
                                  Message message) {
  auto unwrapped = unwrap(message.payload);
  if (!unwrapped.ok()) {
    DDBG_WARN() << "hub: bad envelope";
    return;
  }
  // The original channel id names the true destination.
  const ChannelSpec& spec =
      hub_info_->topology.channel(unwrapped.value().original_channel);
  ++forwarded_;
  // Re-envelope so the client can present the original channel.
  ctx.send(hub_info_->from_hub[spec.destination.value()],
           Message::application(envelope(unwrapped.value().original_channel,
                                         unwrapped.value().payload)));
}

// Presents the original application topology to the user process while
// physically routing everything through the hub.
class HubClientShim::ClientContext final : public ProcessContext {
 public:
  explicit ClientContext(HubClientShim& shim) : shim_(shim) {}

  void bind(ProcessContext* outer) { outer_ = outer; }

  [[nodiscard]] ProcessId self() const override { return shim_.self_; }
  [[nodiscard]] TimePoint now() const override { return outer_->now(); }
  [[nodiscard]] const Topology& topology() const override {
    // The user sees the *original* application topology, exactly as in the
    // un-rerouted run; the hub channels are this shim's private plumbing.
    return shim_.hub_info_->user_topology;
  }

  void send(ChannelId channel, Message message) override {
    // Reroute: wrap and send to the hub instead of the direct channel.
    ctx_send_count_ += 1;
    outer_->send(shim_.hub_info_->to_hub[shim_.self_.value()],
                 Message::application(
                     envelope(channel, message.payload)));
  }

  TimerId set_timer(Duration delay) override {
    return outer_->set_timer(delay);
  }
  void cancel_timer(TimerId timer) override { outer_->cancel_timer(timer); }
  [[nodiscard]] Rng& rng() override { return outer_->rng(); }
  void stop_self() override { outer_->stop_self(); }

 private:
  HubClientShim& shim_;
  ProcessContext* outer_ = nullptr;
  std::uint64_t ctx_send_count_ = 0;
};

HubClientShim::HubClientShim(ProcessId self, const HubTopology* hub_info,
                             ProcessPtr user)
    : self_(self), hub_info_(hub_info), user_(std::move(user)) {
  DDBG_ASSERT(hub_info_ != nullptr, "HubClientShim needs hub topology info");
  DDBG_ASSERT(user_ != nullptr, "HubClientShim needs a user process");
  client_ctx_ = std::make_unique<ClientContext>(*this);
}

HubClientShim::~HubClientShim() = default;

void HubClientShim::on_start(ProcessContext& ctx) {
  client_ctx_->bind(&ctx);
  user_->on_start(*client_ctx_);
}

void HubClientShim::on_message(ProcessContext& ctx, ChannelId /*in*/,
                               Message message) {
  client_ctx_->bind(&ctx);
  auto unwrapped = unwrap(message.payload);
  if (!unwrapped.ok()) {
    DDBG_WARN() << "hub client: bad envelope";
    return;
  }
  user_->on_message(*client_ctx_, unwrapped.value().original_channel,
                    Message::application(std::move(unwrapped.value().payload)));
}

void HubClientShim::on_timer(ProcessContext& ctx, TimerId timer) {
  client_ctx_->bind(&ctx);
  user_->on_timer(*client_ctx_, timer);
}

std::vector<ProcessPtr> wrap_for_hub(const HubTopology& hub_info,
                                     std::vector<ProcessPtr> users) {
  DDBG_ASSERT(users.size() + 1 == hub_info.topology.num_processes(),
              "one user process per non-hub topology slot");
  std::vector<ProcessPtr> wrapped;
  wrapped.reserve(users.size() + 1);
  for (std::size_t i = 0; i < users.size(); ++i) {
    wrapped.push_back(std::make_unique<HubClientShim>(
        ProcessId(static_cast<std::uint32_t>(i)), &hub_info,
        std::move(users[i])));
  }
  wrapped.push_back(std::make_unique<HubRouterProcess>(&hub_info));
  return wrapped;
}

}  // namespace ddbg
