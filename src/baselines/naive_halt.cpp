#include "baselines/naive_halt.hpp"

#include "common/logging.hpp"

namespace ddbg {

// Minimal instrumentation context: stamps clocks and emits send/receive
// events so the analysis layer can account messages, but implements none of
// the marker machinery — that is the point of this baseline.
class NaiveHaltShim::NaiveContext final : public ProcessContext {
 public:
  explicit NaiveContext(NaiveHaltShim& shim) : shim_(shim) {}

  void bind(ProcessContext* outer) { outer_ = outer; }

  [[nodiscard]] ProcessId self() const override { return shim_.self_; }
  [[nodiscard]] TimePoint now() const override { return outer_->now(); }
  [[nodiscard]] const Topology& topology() const override {
    return outer_->topology();
  }

  void send(ChannelId channel, Message message) override {
    shim_.vclock_.tick(shim_.self_);
    message.vclock = shim_.vclock_;
    message.lamport = shim_.lamport_.on_send();
    message.message_id =
        (static_cast<std::uint64_t>(shim_.self_.value()) + 1) << 40 |
        ++shim_.send_counter_;

    LocalEvent event;
    event.kind = LocalEventKind::kMessageSent;
    event.process = shim_.self_;
    event.channel = channel;
    event.message_id = message.message_id;
    event.lamport = message.lamport;
    event.vclock = shim_.vclock_;
    event.local_seq = shim_.local_seq_++;
    event.when = outer_->now();

    outer_->send(channel, std::move(message));
    if (shim_.options_.trace_sink) shim_.options_.trace_sink(event);
  }

  TimerId set_timer(Duration delay) override {
    return outer_->set_timer(delay);
  }
  void cancel_timer(TimerId timer) override { outer_->cancel_timer(timer); }
  [[nodiscard]] Rng& rng() override { return outer_->rng(); }
  void stop_self() override { outer_->stop_self(); }

 private:
  NaiveHaltShim& shim_;
  ProcessContext* outer_ = nullptr;
};

NaiveHaltShim::NaiveHaltShim(ProcessId self, ProcessPtr user, Options options)
    : self_(self), user_(std::move(user)), options_(std::move(options)) {
  DDBG_ASSERT(user_ != nullptr, "NaiveHaltShim needs a user process");
  naive_ctx_ = std::make_unique<NaiveContext>(*this);
}

NaiveHaltShim::~NaiveHaltShim() = default;

void NaiveHaltShim::on_start(ProcessContext& ctx) {
  naive_ctx_->bind(&ctx);
  user_->on_start(*naive_ctx_);
}

void NaiveHaltShim::on_message(ProcessContext& ctx, ChannelId in,
                               Message message) {
  naive_ctx_->bind(&ctx);
  if (halted_) {
    // The naive scheme has nowhere to put this: the process is frozen and
    // no channel recording exists.  The message is lost to the debugger.
    ++dropped_;
    return;
  }
  vclock_.on_receive(self_, message.vclock);
  const std::uint64_t receive_lamport = lamport_.on_receive(message.lamport);

  LocalEvent event;
  event.kind = LocalEventKind::kMessageReceived;
  event.process = self_;
  event.channel = in;
  event.message_id = message.message_id;
  event.lamport = receive_lamport;
  event.vclock = vclock_;
  event.local_seq = local_seq_++;
  event.when = ctx.now();

  user_->on_message(*naive_ctx_, in, std::move(message));
  if (options_.trace_sink) options_.trace_sink(event);
}

void NaiveHaltShim::on_timer(ProcessContext& ctx, TimerId timer) {
  naive_ctx_->bind(&ctx);
  if (halted_) return;
  user_->on_timer(*naive_ctx_, timer);
}

void NaiveHaltShim::halt_now(ProcessContext& ctx) {
  if (halted_) return;
  halted_ = true;
  snapshot_.process = self_;
  snapshot_.state = user_->snapshot_state();
  snapshot_.description = user_->describe_state();
  snapshot_.vclock = vclock_;
  snapshot_.captured_at = ctx.now();
}

std::vector<ProcessPtr> wrap_in_naive_shims(const Topology& topology,
                                            std::vector<ProcessPtr> users,
                                            NaiveHaltShim::Options options) {
  DDBG_ASSERT(users.size() == topology.num_user_processes(),
              "one user process per topology slot");
  std::vector<ProcessPtr> wrapped;
  wrapped.reserve(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    wrapped.push_back(std::make_unique<NaiveHaltShim>(
        ProcessId(static_cast<std::uint32_t>(i)), std::move(users[i]),
        options));
  }
  return wrapped;
}

}  // namespace ddbg
