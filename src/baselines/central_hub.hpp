// Central-hub rerouting baseline (section 4 of the paper).
//
// BUGNET [10] and Schiffenbaur's debugger [11] route *all* application
// messages through a central debugger process, which gives a single point
// of event ordering but — as the paper argues — (1) adds substantial
// communication overhead, (2) perturbs the execution, and (3) is complex to
// build.  This module implements that architecture so experiment E7 can
// measure (1) and (2) against the marker-based approach.
//
// Realization: the hub topology keeps the application's channel table (so
// channel ids keep their meaning) but adds a hub process with a channel
// pair to every user process.  A HubClientShim wraps each user process:
// sends are enveloped {original_channel, payload} and go to the hub; the
// hub unwraps, decides the true destination from the original channel id,
// and forwards; the client presents the delivery to the user as if it had
// arrived on the original channel.
//
// The HubTopology struct is owned by the caller and must outlive the
// simulation/runtime (its channel and process ids are plain indices, valid
// across the runtime's own copy of the Topology).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/process.hpp"

namespace ddbg {

struct HubTopology {
  Topology topology;       // user topology + hub process and channels
  Topology user_topology;  // what the wrapped user processes are shown
  ProcessId hub;
  std::vector<ChannelId> to_hub;    // per user process
  std::vector<ChannelId> from_hub;  // per user process
};

// Extends `user_topology` with a hub process connected to every user
// process.  The original application channels remain in the table but
// carry no traffic.
[[nodiscard]] HubTopology make_hub_topology(const Topology& user_topology);

class HubRouterProcess final : public Process {
 public:
  explicit HubRouterProcess(const HubTopology* hub_info)
      : hub_info_(hub_info) {}

  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  [[nodiscard]] std::string describe_state() const override {
    return "hub forwarded=" + std::to_string(forwarded_);
  }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  const HubTopology* hub_info_;
  std::uint64_t forwarded_ = 0;
};

class HubClientShim final : public Process {
 public:
  HubClientShim(ProcessId self, const HubTopology* hub_info, ProcessPtr user);
  ~HubClientShim() override;

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;
  [[nodiscard]] Bytes snapshot_state() const override {
    return user_->snapshot_state();
  }
  [[nodiscard]] std::string describe_state() const override {
    return user_->describe_state();
  }

 private:
  class ClientContext;

  ProcessId self_;
  const HubTopology* hub_info_;
  ProcessPtr user_;
  std::unique_ptr<ClientContext> client_ctx_;
};

// Wrap user processes in hub-client shims and append the router (hub slot
// last, matching make_hub_topology's process numbering).
[[nodiscard]] std::vector<ProcessPtr> wrap_for_hub(
    const HubTopology& hub_info, std::vector<ProcessPtr> users);

}  // namespace ddbg
