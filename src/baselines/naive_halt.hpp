// Naive-halt baseline (section 4's IDD critique, and the paper's section-2
// motivation: "some information may be lost or recorded incorrectly").
//
// The naive approach halts each process by an out-of-band "signal" that
// reaches processes at different times, with no markers and no channel
// recording.  Each process freezes where the signal finds it and reports
// its state; application messages that were in flight are simply dropped
// on arrival at a frozen process.
//
// The resulting cut of process states is a real-time cut — actually
// consistent by the vector-clock criterion — but the global state is
// *incomplete*: in-flight messages are unaccounted, so resuming from (or
// reasoning about) the collected state loses them.  Experiment E10
// quantifies the loss against the Halting Algorithm's zero.
#pragma once

#include <memory>

#include "clock/lamport.hpp"
#include "clock/vector_clock.hpp"
#include "core/event.hpp"
#include "core/global_state.hpp"
#include "net/process.hpp"

namespace ddbg {

class NaiveHaltShim final : public Process {
 public:
  struct Options {
    std::function<void(const LocalEvent&)> trace_sink;
  };

  NaiveHaltShim(ProcessId self, ProcessPtr user, Options options);
  ~NaiveHaltShim() override;

  void on_start(ProcessContext& ctx) override;
  void on_message(ProcessContext& ctx, ChannelId in, Message message) override;
  void on_timer(ProcessContext& ctx, TimerId timer) override;
  [[nodiscard]] Bytes snapshot_state() const override {
    return user_->snapshot_state();
  }
  [[nodiscard]] std::string describe_state() const override {
    return user_->describe_state();
  }

  // The out-of-band stop signal: freeze immediately, capture state.
  // Invoke via Simulation::post / Runtime::post.
  void halt_now(ProcessContext& ctx);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] const ProcessSnapshot& snapshot() const { return snapshot_; }
  // Application messages that arrived after the freeze and were dropped.
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

 private:
  class NaiveContext;

  ProcessId self_;
  ProcessPtr user_;
  Options options_;
  std::unique_ptr<NaiveContext> naive_ctx_;

  LamportClock lamport_;
  VectorClock vclock_;
  std::uint64_t local_seq_ = 0;
  std::uint64_t send_counter_ = 0;

  bool halted_ = false;
  ProcessSnapshot snapshot_;
  std::uint64_t dropped_ = 0;
};

[[nodiscard]] std::vector<ProcessPtr> wrap_in_naive_shims(
    const Topology& topology, std::vector<ProcessPtr> users,
    NaiveHaltShim::Options options);

}  // namespace ddbg
